"""`ValidationService` — many modeling sessions behind one validation loop.

The paper's Sec. 4 experience report is a *tool* story: validation after
every edit, for a room full of modelers working concurrently.  PR 1-2 made
one session flat-cost per edit; this module is the scale-out step — one
service owning many named sessions/schemas behind a four-verb API
(:meth:`ValidationService.open` / :meth:`~ValidationService.edit` /
:meth:`~ValidationService.report` / :meth:`~ValidationService.close`).

**The batched-drain contract.**  Edits applied through the service mutate
the session's schema (journaling every change) but do **not** validate.
Validation happens when a session's journal is *drained*: explicitly via
:meth:`~ValidationService.report`, or for many sessions at once via
:meth:`~ValidationService.drain` — the service tick.  One drain consumes
the whole pending journal window in a single
:meth:`~repro.patterns.incremental.IncrementalEngine.refresh`, so N edits
between ticks cost one scope computation instead of N.  The report a
drain produces is **exact**, not approximate: whatever the batching, it
equals the from-scratch analysis of the current schema as a multiset of
findings (property-tested in ``tests/server/test_service.py``).

**Parallelism.**  Each session owns a lock; drains of different sessions
run concurrently on the service's thread pool while a drain of one session
is serialized with its edits.  Within an engine, the per-site finding
stores are :class:`~repro.server.sharding.ShardedSiteStore` instances —
sites are partitioned by a stable site-key hash, so refreshes that touch
disjoint shards are independent units of work (the natural seam for
cross-process sharding later).

**Memory.**  Only the ``max_live_engines`` most-recently-used sessions
keep a live engine; idle engines are *suspended* into
:class:`~repro.patterns.incremental.EngineSnapshot`\\ s (finding stores +
journal mark).  A suspended session keeps accepting edits — its journal
simply grows — and its next drain resumes the engine by replaying exactly
the journal-checkpoint window since the snapshot's mark, falling back to a
full rebuild only if the window was truncated.
"""

from __future__ import annotations

import copy
import threading
import uuid
import zlib
from collections import OrderedDict
from collections.abc import Iterable
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from typing import Any

from repro.exceptions import SchemaError, UnknownElementError
from repro.orm.schema import Schema
from repro.patterns.incremental import EngineSnapshot, IncrementalEngine
from repro.reasoner.encoding import GOAL_STRONG, Goal
from repro.reasoner.incremental import MAX_CHECK_CONFLICTS, SessionReasoner
from repro.reasoner.modelfinder import Verdict
from repro.server.sharding import DEFAULT_SHARDS, ShardedSiteStore
from repro.tool.validator import ToolReport, ValidatorSettings, report_from_engine

#: Session-style edit verbs accepted by :meth:`ValidationService.edit`,
#: mapped to the Schema mutator that implements them (the Schema method
#: names themselves are accepted too).  Arguments follow the Schema
#: mutator's signature.
EDIT_VERBS: dict[str, str] = {
    "add_entity": "add_entity_type",
    "add_value_type": "add_value_type",
    "add_subtype": "add_subtype",
    "add_fact": "add_fact_type",
    "add_mandatory": "add_mandatory",
    "add_uniqueness": "add_uniqueness",
    "add_frequency": "add_frequency",
    "add_exclusion": "add_exclusion",
    "add_exclusive_types": "add_exclusive_types",
    "add_subset": "add_subset",
    "add_equality": "add_equality",
    "add_ring": "add_ring",
    "remove_constraint": "remove_constraint",
    "remove_subtype": "remove_subtype",
    "remove_fact": "remove_fact_type",
    "remove_entity": "remove_object_type",
}

_SCHEMA_VERBS = frozenset(EDIT_VERBS.values())


@dataclass
class DrainStats:
    """What one :meth:`ValidationService.drain` tick did."""

    examined: int = 0  # sessions considered
    drained: int = 0  # sessions that actually consumed changes
    changes: int = 0  # journal entries consumed across all sessions
    resumed: int = 0  # engines resurrected from snapshots (window replay)
    rebuilt: int = 0  # engines rebuilt from scratch


@dataclass
class ServiceStats:
    """Cumulative service counters (approximate under concurrency)."""

    sessions: int
    live_engines: int
    suspended_engines: int
    live_sites: int
    edits: int
    drains: int
    changes_drained: int
    evictions: int
    resumes: int
    rebuilds: int


class _SessionState:
    """One session's mutable state; every access goes through ``lock``."""

    __slots__ = (
        "name",
        "schema",
        "settings",
        "lock",
        "engine",
        "engine_key",
        "snapshot",
        "reasoner",
        "edits",
        "epoch",
    )

    def __init__(self, name: str, schema: Schema, settings: ValidatorSettings) -> None:
        self.name = name
        self.schema = schema
        self.settings = settings
        self.lock = threading.Lock()
        self.engine: IncrementalEngine | None = None
        self.engine_key: tuple[Any, ...] | None = None  # settings.family_key()
        self.snapshot: EngineSnapshot | None = None
        # Warm complete reasoner (SessionReasoner), built lazily on the
        # session's first `check` and kept in sync through the journal.
        self.reasoner: SessionReasoner | None = None
        self.edits = 0
        # A random per-open nonce prefixed to report marks.  The journal
        # position alone is not a safe ETag across session *instances*: a
        # session re-homed to another worker process replays into a fresh
        # schema whose journal counter can coincide with the old one at a
        # different schema state.  The epoch makes marks from different
        # instances never compare equal.
        self.epoch = uuid.uuid4().hex[:12]

    def mark(self) -> str:
        """The session's opaque report ETag.

        Epoch + journal position + analysis-profile fingerprint: the mark
        compares equal iff nothing that can change the report did.
        ``journal_size`` is monotonic and keeps counting truncated entries
        across :meth:`repro.orm.schema.Schema.compact_journal`, so journal
        compaction can neither produce a false hit nor invalidate the
        current mark; the profile fingerprint covers in-process callers
        toggling ``settings`` families, which alters the report without a
        journal entry.
        """
        profile = zlib.crc32(repr(self.settings.family_key()).encode("utf-8"))
        return f"{self.epoch}:{self.schema.journal_size}:{profile:08x}"

    def pending_changes(self) -> int:
        """Journal entries recorded since the session's engine last drained."""
        if self.engine is not None:
            return self.schema.journal_size - self.engine.journal_mark
        if self.snapshot is not None:
            return self.schema.journal_size - self.snapshot.mark
        return self.schema.journal_size  # engine never built: everything pends


class SessionHandle:
    """Public facade of one open session.

    ``schema`` is the live schema object — direct mutation is fine from a
    single thread (the journal records everything, and the next drain picks
    it up); concurrent writers must go through :meth:`edit`, which takes
    the session lock and so serializes with drains of the same session.
    """

    def __init__(self, service: "ValidationService", state: _SessionState) -> None:
        self._service = service
        self._state = state

    @property
    def name(self) -> str:
        return self._state.name

    @property
    def schema(self) -> Schema:
        return self._state.schema

    @property
    def settings(self) -> ValidatorSettings:
        return self._state.settings

    @property
    def pending_changes(self) -> int:
        """Journal entries not yet reflected in the session's findings."""
        return self._state.pending_changes()

    def edit(self, verb: str, *args: Any, **kwargs: Any) -> Any:
        """Apply one edit (no validation; see the batched-drain contract)."""
        return self._service.edit(self.name, verb, *args, **kwargs)

    def report(self) -> ToolReport:
        """Drain this session and return its current report."""
        return self._service.report(self.name)

    def close(self) -> ToolReport:
        """Close this session, returning its final report."""
        return self._service.close(self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SessionHandle({self.name!r}, pending={self.pending_changes})"


class ValidationService:
    """Many named modeling sessions behind one batched validation loop.

    Parameters
    ----------
    settings:
        Default :class:`ValidatorSettings` profile for sessions opened
        without their own (deep-copied per session, so later per-session
        toggling stays isolated).
    max_live_engines:
        LRU capacity for live engines, in engine *count*.  Sessions beyond
        it are suspended (finding stores + journal mark) and resumed on
        their next drain by replaying the journal window.  Eviction is
        best-effort: a session whose lock is busy is skipped (it is hot by
        definition).
    max_live_sites:
        Optional live-engine budget in **check sites** (the sum of
        :meth:`repro.patterns.incremental.IncrementalEngine.site_count`
        over live engines).  Engine count treats a giant schema and a tiny
        one as equal tenants; weighting by site count stops one giant
        engine from pinning the memory the budget was meant to bound —
        the giant is suspended first even when the engine count is under
        ``max_live_engines``.  ``None`` (default) keeps pure count-LRU.
    max_workers:
        Thread-pool width for :meth:`drain`.  ``0`` disables the pools
        (drains run inline, deterministic — handy for tests and the CLI's
        ``--jobs 0``).  A nonzero width creates **two** pools of that
        width: one draining sessions, one fanning each draining engine's
        per-analysis shard refreshes (separate pools, so a drain waiting
        on its refresh units can never deadlock the tick) — a single hot
        schema's refresh therefore no longer serializes a tick on one
        thread.
    store_shards:
        Shard count of every engine's per-site finding stores.
    """

    def __init__(
        self,
        *,
        settings: ValidatorSettings | None = None,
        max_live_engines: int = 16,
        max_live_sites: int | None = None,
        max_workers: int | None = None,
        store_shards: int = DEFAULT_SHARDS,
    ) -> None:
        if max_live_engines < 1:
            raise ValueError(f"max_live_engines must be >= 1, got {max_live_engines}")
        if max_live_sites is not None and max_live_sites < 1:
            raise ValueError(f"max_live_sites must be >= 1, got {max_live_sites}")
        self._default_settings = settings or ValidatorSettings()
        self.max_live_engines = max_live_engines
        self.max_live_sites = max_live_sites
        self._store_shards = store_shards
        self._sessions: dict[str, _SessionState] = {}
        self._lru: OrderedDict[str, None] = OrderedDict()
        self._registry_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._edits = 0
        self._drains = 0
        self._changes_drained = 0
        self._evictions = 0
        self._resumes = 0
        self._rebuilds = 0
        self._executor: ThreadPoolExecutor | None = None
        self._refresh_executor: ThreadPoolExecutor | None = None
        if max_workers != 0:
            self._executor = ThreadPoolExecutor(
                max_workers=max_workers, thread_name_prefix="repro-drain"
            )
            self._refresh_executor = ThreadPoolExecutor(
                max_workers=max_workers, thread_name_prefix="repro-refresh"
            )

    # -- the four verbs --------------------------------------------------

    def open(
        self,
        name: str,
        settings: ValidatorSettings | None = None,
        schema: Schema | None = None,
    ) -> SessionHandle:
        """Open a named session (optionally adopting an existing schema).

        The session's engine is built eagerly (one full check), subject to
        the same LRU capacity as everything else.
        """
        state = _SessionState(
            name,
            schema if schema is not None else Schema(name),
            copy.deepcopy(settings or self._default_settings),
        )
        with self._registry_lock:
            if name in self._sessions:
                raise ValueError(f"session {name!r} is already open")
            self._sessions[name] = state
            self._lru[name] = None
        with state.lock:
            self._ensure_engine(state)
        return SessionHandle(self, state)

    def edit(self, name: str, verb: str, *args: Any, **kwargs: Any) -> Any:
        """Apply one edit to a session's schema — **without** validating.

        ``verb`` is a session-style verb from :data:`EDIT_VERBS` (or the
        Schema mutator name directly); arguments follow the Schema
        mutator's signature.  Returns whatever the mutator returns (the
        created element — useful for generated constraint labels).
        Validation is deferred to the next drain of this session.
        """
        if verb in EDIT_VERBS:
            method = EDIT_VERBS[verb]
        elif verb in _SCHEMA_VERBS:
            method = verb
        else:
            raise UnknownElementError("edit verb", verb)
        state = self._state(name)
        with state.lock:
            result = getattr(state.schema, method)(*args, **kwargs)
            state.edits += 1
        with self._stats_lock:
            self._edits += 1
        return result

    def report(self, name: str) -> ToolReport:
        """Drain one session and return its current (exact) report."""
        report, _ = self.report_marked(name)
        return report

    def report_marked(
        self, name: str, if_mark: str | None = None
    ) -> tuple[ToolReport | None, str]:
        """Drain one session; return ``(report, mark)`` with an ETag.

        ``mark`` is an opaque token identifying the session's journal
        position (see :meth:`_SessionState.mark`).  When the caller echoes
        the mark of a previous report as ``if_mark`` and no edit has been
        applied since, the report is **not** recomputed or re-assembled and
        ``(None, mark)`` is returned — the 304-style short-circuit behind
        the wire protocol's ``if_mark`` field.  A mark can only hit if the
        server itself issued it for this session instance, so a hit always
        means "the schema is exactly as it was when that report was built".
        """
        state = self._state(name)
        with state.lock:
            mark = state.mark()
            if if_mark is not None and if_mark == mark:
                # The mark was issued after a drain to this very journal
                # position under this very analysis profile (edits take
                # the session lock, so the position cannot move under us):
                # the caller's cached report is still exact.
                return None, mark
            pending = state.pending_changes()  # before ensure: resume replays
            engine, resumed, rebuilt = self._ensure_engine(state)
            # repro-lint: disable=RL001 -- the mark names this exact journal position; refresh must run under the session lock so no edit slips between replay and report
            self._refresh(engine)
            report = report_from_engine(engine, state.settings)
            mark = state.mark()
        with self._stats_lock:
            self._drains += 1
            self._changes_drained += pending
            self._resumes += resumed
            self._rebuilds += rebuilt
        return report, mark

    def check(
        self, name: str, goal: Goal = GOAL_STRONG, *, max_domain: int = 4
    ) -> Verdict:
        """Complete (bounded) satisfiability check of a session's schema.

        The first call builds the session's warm
        :class:`~repro.reasoner.incremental.SessionReasoner`; subsequent
        calls re-use its persistent solver, syncing the encoding from the
        change journal — so a check after one edit costs roughly one solve,
        not a re-encode of the whole schema.  Runs under the session lock
        (serialized with edits and drains).  A ``"sat"`` verdict carries a
        decoded witness population; ``"unknown"`` means the solver's
        decision or conflict budget ran out at one or more sizes with no
        SAT answer — neither satisfiability nor bounded unsatisfiability is
        established.  The per-solve conflict budget
        (:data:`~repro.reasoner.incremental.MAX_CHECK_CONFLICTS`) bounds how
        long one check can hold the session lock; the clauses the solver
        learned before exhausting it persist, so a retried check resumes
        from a stronger database.
        """
        if max_domain < 0:
            raise ValueError(f"max_domain must be >= 0, got {max_domain}")
        state = self._state(name)
        with state.lock:
            if state.reasoner is None:
                state.reasoner = SessionReasoner(
                    state.schema, max_conflicts=MAX_CHECK_CONFLICTS
                )
            verdict = state.reasoner.check(goal, max_domain)
        self._touch(name)
        return verdict

    def snapshot_schema(self, name: str) -> str:
        """The session's current schema as ORM DSL text.

        Taken under the session lock, so the text is a consistent cut that
        includes every edit acknowledged so far.  This is the journal-
        compaction primitive of the multi-process router
        (:class:`repro.server.workers.WorkerPool`): the re-homing journal
        for a session collapses to one DSL snapshot plus the edit window
        applied since — the same snapshot-plus-replay-window shape as
        :meth:`repro.patterns.incremental.IncrementalEngine.suspend`.
        """
        from repro.io.dsl import write_schema

        state = self._state(name)
        with state.lock:
            # repro-lint: disable=RL001 -- the snapshot must be a consistent cut; the session lock is precisely what makes it one
            return write_schema(state.schema)

    def close(self, name: str) -> ToolReport:
        """Close a session, returning its final report."""
        with self._registry_lock:
            state = self._sessions.pop(name, None)
            self._lru.pop(name, None)
        if state is None:
            raise UnknownElementError("session", name)
        with state.lock:
            engine, resumed, rebuilt = self._ensure_engine(state, touch=False)
            # repro-lint: disable=RL001 -- the final report must reflect every applied edit; the lock excludes concurrent edits during the last refresh
            self._refresh(engine)
            report = report_from_engine(engine, state.settings)
            state.engine = None
            state.snapshot = None
            state.reasoner = None
        with self._stats_lock:
            self._resumes += resumed
            self._rebuilds += rebuilt
        return report

    def forget(self, name: str) -> None:
        """Discard a session without a final drain or report.

        The live-migration primitive of the multi-process router: after a
        session's journal has been replayed into its new owner worker, the
        old owner only needs to *free* its copy — a :meth:`close` here
        would pay a full final refresh for a report nobody reads.
        """
        with self._registry_lock:
            state = self._sessions.pop(name, None)
            self._lru.pop(name, None)
        if state is None:
            raise UnknownElementError("session", name)
        with state.lock:
            state.engine = None
            state.snapshot = None
            state.reasoner = None

    # -- the service tick ------------------------------------------------

    def drain(
        self, names: Iterable[str] | None = None, *, min_pending: int = 1
    ) -> DrainStats:
        """One service tick: batch-drain every (named) session's journal.

        Sessions with fewer than ``min_pending`` pending journal entries
        are skipped (their stored findings are already current).  Eligible
        sessions are drained **in parallel** on the service's thread pool —
        the per-session lock serializes each drain with that session's
        edits, and sessions never share mutable state, so the tick is safe
        whatever the interleaving.  Returns what the tick did.
        """
        floor = max(min_pending, 1)
        with self._registry_lock:
            if names is None:
                targets = list(self._sessions.values())
            else:
                targets = [self._sessions[n] for n in names]  # KeyError: unknown
        stats = DrainStats(examined=len(targets))
        work = [
            state
            for state in targets
            if state.pending_changes() >= floor
            or (state.engine is None and state.snapshot is None)
        ]
        if not work:
            return stats

        def drain_one(state: _SessionState) -> tuple[int, int, int]:
            with state.lock:
                pending = state.pending_changes()  # before ensure: resume replays
                engine, resumed, rebuilt = self._ensure_engine(state)
                # repro-lint: disable=RL001 -- a drain tick refreshes per session under that session's lock only; cross-session parallelism comes from the executor
                self._refresh(engine)
                return pending, resumed, rebuilt
        if self._executor is None or len(work) == 1:
            results = [drain_one(state) for state in work]
        else:
            results = list(self._executor.map(drain_one, work))
        for pending, resumed, rebuilt in results:
            stats.drained += 1
            stats.changes += pending
            stats.resumed += resumed
            stats.rebuilt += rebuilt
        with self._stats_lock:
            self._drains += stats.drained
            self._changes_drained += stats.changes
            self._resumes += stats.resumed
            self._rebuilds += stats.rebuilt
        return stats

    # -- queries ----------------------------------------------------------

    def session(self, name: str) -> SessionHandle:
        """A handle to an open session (raises on unknown names)."""
        return SessionHandle(self, self._state(name))

    def names(self) -> list[str]:
        """Names of all open sessions, in opening order."""
        with self._registry_lock:
            return list(self._sessions)

    def live_sessions(self) -> list[str]:
        """Names of sessions whose engine is currently live (LRU order,
        least-recently-touched first)."""
        with self._registry_lock:
            return [
                name
                for name in self._lru
                if self._sessions[name].engine is not None
            ]

    def stats(self) -> ServiceStats:
        """Cumulative counters plus the current engine census."""
        with self._registry_lock:
            sessions = len(self._sessions)
            live = sum(1 for s in self._sessions.values() if s.engine is not None)
            suspended = sum(
                1 for s in self._sessions.values() if s.snapshot is not None
            )
            live_sites = sum(
                engine.site_count()
                for s in self._sessions.values()
                if (engine := s.engine) is not None
            )
        with self._stats_lock:
            return ServiceStats(
                sessions=sessions,
                live_engines=live,
                suspended_engines=suspended,
                live_sites=live_sites,
                edits=self._edits,
                drains=self._drains,
                changes_drained=self._changes_drained,
                evictions=self._evictions,
                resumes=self._resumes,
                rebuilds=self._rebuilds,
            )

    # -- lifecycle ---------------------------------------------------------

    def shutdown(self) -> None:
        """Stop the drain pools (open sessions stay readable inline)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._refresh_executor is not None:
            self._refresh_executor.shutdown(wait=True)
            self._refresh_executor = None

    def __enter__(self) -> "ValidationService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stats = self.stats()
        return (
            f"ValidationService(sessions={stats.sessions}, "
            f"live={stats.live_engines}/{self.max_live_engines}, "
            f"edits={stats.edits}, drains={stats.drains})"
        )

    # -- internals ---------------------------------------------------------

    def _state(self, name: str) -> _SessionState:
        with self._registry_lock:
            state = self._sessions.get(name)
        if state is None:
            raise UnknownElementError("session", name)
        return state

    def _store_factory(self) -> ShardedSiteStore:
        return ShardedSiteStore(self._store_shards)

    def _refresh(self, engine: IncrementalEngine) -> None:
        """Drain one engine, fanning its per-analysis shard refreshes onto
        the dedicated refresh pool when the service runs threaded.

        The refresh pool is distinct from the drain pool on purpose: a
        drain task blocks on its engine's refresh units, and a saturated
        pool cannot run subtasks submitted by its own blocked workers.
        With two pools a single hot schema's refresh spreads across the
        refresh pool while other sessions keep draining on the drain pool.
        """
        engine.refresh(executor=self._refresh_executor)

    def _build_engine(self, state: _SessionState) -> IncrementalEngine:
        settings = state.settings
        return IncrementalEngine(
            state.schema,
            enabled=tuple(settings.enabled_ids()),
            advisories=settings.wellformedness,
            formation_rules=settings.formation_rules,
            propagation=settings.propagation,
            store_factory=self._store_factory,
        )

    def _ensure_engine(
        self, state: _SessionState, *, touch: bool = True
    ) -> tuple[IncrementalEngine, int, int]:
        """The session's live engine (resuming or rebuilding as needed).

        Must be called with ``state.lock`` held.  Returns
        ``(engine, resumed, rebuilt)`` so callers can account for what
        reviving cost.  A changed analysis profile (the session's
        ``settings.family_key()`` no longer matches the one the engine —
        or snapshot — was built under) discards both and rebuilds, exactly
        as :meth:`repro.tool.validator.Validator` does for its single
        engine.
        """
        resumed = rebuilt = 0
        key = state.settings.family_key()
        if state.engine_key is not None and state.engine_key != key:
            state.engine = None
            state.snapshot = None  # stores of the old family profile
        state.engine_key = key
        if state.engine is None:
            if state.snapshot is not None:
                try:
                    state.engine = IncrementalEngine.resume(
                        state.schema,
                        state.snapshot,
                        store_factory=self._store_factory,
                    )
                    resumed = 1
                except SchemaError:
                    # replay window truncated: pay the full rebuild
                    state.engine = self._build_engine(state)
                    rebuilt = 1
                state.snapshot = None
            else:
                state.engine = self._build_engine(state)
                rebuilt = 1
            if touch:
                self._evict_over_capacity(exclude=state.name)
        if touch:
            self._touch(state.name)
        return state.engine, resumed, rebuilt

    def _touch(self, name: str) -> None:
        with self._registry_lock:
            if name in self._lru:
                self._lru.move_to_end(name)

    def _evict_over_capacity(self, exclude: str) -> None:
        """Suspend least-recently-used live engines down to capacity.

        Capacity is two-dimensional: engine *count* (``max_live_engines``)
        and, when ``max_live_sites`` is set, total engine *weight* in check
        sites.  Eviction order stays LRU-by-touch, but the site budget
        means one giant engine frees as much room as many small ones — it
        gets suspended even when the engine count is under the cap, instead
        of pinning the whole budget from a single LRU slot.

        Candidates are collected under the registry lock but suspended
        under a *non-blocking* acquire of their own session lock — a busy
        session is hot and is simply skipped, so eviction can never
        deadlock with a concurrent drain (which takes session locks before
        registry peeks, never the other way around).
        """
        with self._registry_lock:
            live = [
                name
                for name in self._lru  # oldest first
                if self._sessions[name].engine is not None
            ]
            # The caller's engine is included in both excess measures.
            excess = len(live) - self.max_live_engines
            site_excess = 0
            if self.max_live_sites is not None:
                weights = {
                    name: engine.site_count()
                    for name in live
                    if (engine := self._sessions[name].engine) is not None
                }
                site_excess = sum(weights.values()) - self.max_live_sites
                evictable = sum(w for name, w in weights.items() if name != exclude)
                if site_excess > evictable:
                    # The excluded (hot) engine alone blows the budget:
                    # suspending every other session would still not fit
                    # and would only churn them through suspend/resume on
                    # each revival of the giant.  Tolerate the over-budget
                    # caller instead; the next touch of a *small* session
                    # evicts the giant normally.
                    site_excess = 0
            candidates = [name for name in live if name != exclude]
        for name in candidates:
            if excess <= 0 and site_excess <= 0:
                return
            state = self._sessions.get(name)
            if state is None or not state.lock.acquire(blocking=False):
                continue
            try:
                if state.engine is None:
                    continue
                site_excess -= state.engine.site_count()
                state.snapshot = state.engine.suspend()
                state.engine = None
                excess -= 1
                with self._stats_lock:
                    self._evictions += 1
            finally:
                state.lock.release()
