"""Multi-session validation service with sharded finding stores and an
asyncio wire front.

:class:`ValidationService` owns many named modeling sessions/schemas behind
one ``open``/``edit``/``report``/``check``/``close`` API (``check`` is the
warm bounded-satisfiability verb: a per-session
:class:`~repro.reasoner.incremental.SessionReasoner` kept in sync through
the schema journal), drains each schema's change
journal in **batches** per tick (thread-pool parallel across sessions, a
lock per schema; each draining engine fans its per-analysis shard refreshes
onto a second pool), shards every engine's per-site finding store by site
key (:class:`ShardedSiteStore`), and keeps only the hottest engines live —
idle ones are suspended to journal-mark snapshots and resumed by replaying
the checkpoint window (see :mod:`repro.server.service` for the contract).

The service is reachable remotely through the JSON wire protocol
(:mod:`repro.server.protocol`): :class:`repro.server.wire.WireServer` is
the asyncio HTTP front (``orm-validate serve``),
:class:`repro.server.client.ServiceClient` the blocking client
(``orm-validate --batch --server URL``).  With ``workers=N``
(``orm-validate serve --workers N``) the front routes sessions to N
worker **subprocesses** via :class:`repro.server.workers.WorkerPool` —
rendezvous (HRW) session placement, the same JSON shapes over a pipe
transport, crash re-homing by journal replay — without changing the wire
protocol clients speak.  A ``data_dir`` makes the journal durable
(:mod:`repro.server.durability`): every acknowledged open/edit is
fsync'd to an append-only per-session segment log before the ack, so a
router restart recovers every session by snapshot-load + delta replay,
and the ``resize`` verb grows/shrinks the pool at runtime, live-migrating
only the sessions whose rendezvous owner changed.  ``wire``, ``client``
and ``workers`` are imported lazily on attribute access to keep
``import repro.server`` light.
"""

from repro.server.protocol import WireError
from repro.server.service import (
    EDIT_VERBS,
    DrainStats,
    ServiceStats,
    SessionHandle,
    ValidationService,
)
from repro.server.sharding import (
    DEFAULT_SHARDS,
    ShardedSiteStore,
    rendezvous_owner,
    rendezvous_score,
    session_home,
    stable_shard_index,
)

__all__ = [
    "DEFAULT_SHARDS",
    "DrainStats",
    "EDIT_VERBS",
    "LocalBackend",
    "ServerThread",
    "ServiceClient",
    "ServiceStats",
    "SessionHandle",
    "ShardedSiteStore",
    "ValidationService",
    "WireError",
    "WireServer",
    "WorkerPool",
    "rendezvous_owner",
    "rendezvous_score",
    "session_home",
    "stable_shard_index",
]


def __getattr__(name: str) -> object:
    if name in ("WireServer", "ServerThread", "LocalBackend"):
        from repro.server import wire

        return getattr(wire, name)
    if name == "ServiceClient":
        from repro.server.client import ServiceClient

        return ServiceClient
    if name == "WorkerPool":
        from repro.server.workers import WorkerPool

        return WorkerPool
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
