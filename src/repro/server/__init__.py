"""Multi-session validation service with sharded finding stores.

:class:`ValidationService` owns many named modeling sessions/schemas behind
one ``open``/``edit``/``report``/``close`` API, drains each schema's change
journal in **batches** per tick (thread-pool parallel across sessions, a
lock per schema), shards every engine's per-site finding store by site key
(:class:`ShardedSiteStore`), and keeps only the hottest engines live —
idle ones are suspended to journal-mark snapshots and resumed by replaying
the checkpoint window (see :mod:`repro.server.service` for the contract).
"""

from repro.server.service import (
    EDIT_VERBS,
    DrainStats,
    ServiceStats,
    SessionHandle,
    ValidationService,
)
from repro.server.sharding import DEFAULT_SHARDS, ShardedSiteStore, stable_shard_index

__all__ = [
    "DEFAULT_SHARDS",
    "DrainStats",
    "EDIT_VERBS",
    "ServiceStats",
    "SessionHandle",
    "ShardedSiteStore",
    "ValidationService",
    "stable_shard_index",
]
