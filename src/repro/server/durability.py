"""Durable per-session segment logs for the multi-process router.

The router's re-homing journal (PR 5) lives in router memory: a dead
*worker* is survivable, a dead *router* loses every session.  This module
makes the journal durable.  Each session owns a directory of append-only
**segment files** under a ``data_dir``; every record the router intends to
acknowledge — the open payload, every accepted edit — is framed, written,
and fsync'd *before* the acknowledgement leaves the router (the
log-before-ack invariant, enforced lexically by lint rule RL009).

Format
------
A segment is a flat sequence of frames::

    <length: u32 LE> <crc32: u32 LE> <payload: length bytes of UTF-8 JSON>

The JSON payload is ``{"kind": ..., ...}`` where ``kind`` is ``"open"``,
``"edit"`` or ``"snapshot"``.  CRC32 covers the payload bytes only, so a
torn tail (partial header, short payload, or payload that does not match
its CRC) is detected and *skipped with a counted warning* — recovery never
raises on a corrupt tail, it surfaces the skip count instead.

Compaction mirrors the in-memory journal compaction: a new segment is
started whose first record is a ``snapshot`` (the session's open payload
refreshed with a schema-DSL snapshot from
:meth:`repro.server.service.ValidationService.snapshot_schema`), the old
segments are deleted, and the edit window restarts empty.  Recovery is
therefore always *snapshot-load + delta replay*: read segments in order,
let the latest snapshot reset the baseline, replay the edits after it.

Fault injection
---------------
``_write_frame`` is the single seam between the log and the filesystem.
The fault harness monkeypatches it to simulate ``ENOSPC``; the log turns
any failed write into a :class:`StorageError` *after* truncating the
segment back to its last durable frame, so a failed append never leaves a
half-frame that a later append would bury mid-segment.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, BinaryIO

#: Frame header: payload length then CRC32 of the payload, little-endian.
_FRAME = struct.Struct("<II")

#: Record kinds.  ``open``/``edit`` mirror the wire verbs; ``snapshot`` is
#: a compacted baseline (an open payload with a refreshed ``schema_dsl``).
KIND_OPEN = "open"
KIND_EDIT = "edit"
KIND_SNAPSHOT = "snapshot"

_SEGMENT_SUFFIX = ".seg"


class StorageError(RuntimeError):
    """An append could not be made durable (disk full, I/O error).

    The router maps this to a typed wire error *instead of acknowledging*:
    an edit that was never durably logged must never be acked.
    """


def _write_frame(handle: BinaryIO, data: bytes) -> None:
    """Write one framed record's bytes.  Monkeypatch target for fault tests."""
    handle.write(data)


def _encode_session_dir(session_name: str) -> str:
    """Hex-encode a session name into a filesystem-safe directory name."""
    return session_name.encode("utf-8").hex()


def _decode_session_dir(dir_name: str) -> str:
    return bytes.fromhex(dir_name).decode("utf-8")


def _frame(record: dict[str, Any]) -> bytes:
    payload = json.dumps(record, separators=(",", ":"), sort_keys=True).encode("utf-8")
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def _read_frames(data: bytes) -> tuple[list[dict[str, Any]], int]:
    """Decode frames from raw segment bytes.

    Returns ``(records, skipped)`` where ``skipped`` counts undecodable
    frames (torn header, short payload, CRC mismatch, bad JSON).  Decoding
    stops at the first bad frame — anything after it has no trustworthy
    frame boundary.
    """
    records: list[dict[str, Any]] = []
    offset = 0
    while offset < len(data):
        header = data[offset : offset + _FRAME.size]
        if len(header) < _FRAME.size:
            return records, 1
        length, crc = _FRAME.unpack(header)
        payload = data[offset + _FRAME.size : offset + _FRAME.size + length]
        if len(payload) < length or zlib.crc32(payload) != crc:
            return records, 1
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return records, 1
        if not isinstance(record, dict):
            return records, 1
        records.append(record)
        offset += _FRAME.size + length
    return records, 0


@dataclass
class RecoveredSession:
    """One session reconstructed from its segment log."""

    name: str
    open_payload: dict[str, Any]
    edits: list[dict[str, Any]] = field(default_factory=list)
    #: Records skipped because of torn writes / CRC mismatches.
    skipped_records: int = 0


@dataclass
class RecoveryReport:
    """Everything :meth:`LogStore.recover` could reconstruct."""

    sessions: list[RecoveredSession] = field(default_factory=list)
    #: Total undecodable records across all sessions — each one was
    #: skipped with a counted warning rather than a traceback.
    skipped_records: int = 0
    #: Session directories that held no decodable ``open``/``snapshot``
    #: baseline at all (e.g. the open itself was torn) and were dropped.
    dropped_sessions: int = 0


class SessionLog:
    """The append-only segment log of a single session.

    All mutation goes through :meth:`append` / :meth:`append_batch` /
    :meth:`compact`; each returns only after the bytes are fsync'd, which
    is what lets the router acknowledge the corresponding wire request.
    """

    def __init__(self, directory: Path, session_name: str) -> None:
        self._directory = directory
        self._name = session_name
        self._directory.mkdir(parents=True, exist_ok=True)
        existing = sorted(self._directory.glob(f"*{_SEGMENT_SUFFIX}"))
        if existing:
            self._segment_index = int(existing[-1].stem)
            self._handle: BinaryIO = open(existing[-1], "ab")
        else:
            self._segment_index = 1
            self._handle = open(self._segment_path(1), "ab")

    @property
    def name(self) -> str:
        return self._name

    @property
    def directory(self) -> Path:
        return self._directory

    def _segment_path(self, index: int) -> Path:
        return self._directory / f"{index:08d}{_SEGMENT_SUFFIX}"

    def append(self, kind: str, payload: dict[str, Any]) -> int:
        """Durably append one record (write + flush + fsync).

        Returns the segment offset *before* the record, usable with
        :meth:`rollback_to` to undo a pre-dispatch append whose request
        the worker then rejected.
        """
        return self.append_batch([(kind, payload)])

    def append_batch(self, records: list[tuple[str, dict[str, Any]]]) -> int:
        """Durably append several records under a single fsync.

        On any write failure the segment is truncated back to its length
        before the batch, so the log never accumulates a half-written
        frame mid-file, and :class:`StorageError` is raised — the caller
        must *not* acknowledge the corresponding request.  Returns the
        offset before the batch (see :meth:`append`).
        """
        data = b"".join(_frame({"kind": kind, **payload}) for kind, payload in records)
        start = self._handle.tell()
        try:
            _write_frame(self._handle, data)
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except OSError as exc:
            self._rewind(start)
            raise StorageError(f"append to session log failed: {exc}") from exc
        return start

    def rollback_to(self, offset: int) -> None:
        """Truncate back to an offset returned by :meth:`append`.

        Only valid for the *last* append (the caller holds the session
        lock, so nothing can have appended in between).
        """
        self._rewind(offset)

    def _rewind(self, offset: int) -> None:
        """Best-effort truncate back to the last durable frame boundary."""
        try:
            self._handle.truncate(offset)
            self._handle.seek(offset)
        except OSError:
            # The torn tail stays on disk; recovery skips it by CRC.
            pass

    def compact(self, snapshot_payload: dict[str, Any]) -> None:
        """Start a fresh segment from a snapshot record, drop old segments.

        The new segment is durable before any old segment is removed, so a
        crash at any point leaves at least one decodable baseline.
        """
        next_index = self._segment_index + 1
        path = self._segment_path(next_index)
        handle: BinaryIO = open(path, "ab")
        try:
            _write_frame(handle, _frame({"kind": KIND_SNAPSHOT, **snapshot_payload}))
            handle.flush()
            os.fsync(handle.fileno())
        except OSError as exc:
            handle.close()
            path.unlink(missing_ok=True)
            raise StorageError(f"compaction snapshot failed: {exc}") from exc
        old_handle, old_index = self._handle, self._segment_index
        self._handle, self._segment_index = handle, next_index
        old_handle.close()
        for index in range(1, old_index + 1):
            self._segment_path(index).unlink(missing_ok=True)

    def close(self) -> None:
        self._handle.close()

    def delete(self) -> None:
        """Remove the whole session directory (session closed cleanly)."""
        self._handle.close()
        for path in self._directory.glob(f"*{_SEGMENT_SUFFIX}"):
            path.unlink(missing_ok=True)
        try:
            self._directory.rmdir()
        except OSError:
            # A non-segment stray keeps the dir; recovery ignores it.
            pass


class LogStore:
    """All session logs under one ``data_dir``."""

    def __init__(self, data_dir: str | Path) -> None:
        self._root = Path(data_dir)
        self._root.mkdir(parents=True, exist_ok=True)

    @property
    def root(self) -> Path:
        return self._root

    def open_log(self, session_name: str) -> SessionLog:
        """Create (or reopen) the segment log for a session."""
        return SessionLog(self._root / _encode_session_dir(session_name), session_name)

    def discard(self, session_name: str) -> None:
        """Drop a session's log without needing an open handle."""
        directory = self._root / _encode_session_dir(session_name)
        if not directory.is_dir():
            return
        for path in directory.glob(f"*{_SEGMENT_SUFFIX}"):
            path.unlink(missing_ok=True)
        try:
            directory.rmdir()
        except OSError:
            pass

    def recover(self) -> RecoveryReport:
        """Reconstruct every session from its segments: snapshot + deltas.

        Never raises on corrupt data — torn or CRC-failed records are
        skipped and counted, sessions with no decodable baseline are
        dropped and counted.
        """
        report = RecoveryReport()
        for directory in sorted(self._root.iterdir()):
            if not directory.is_dir():
                continue
            try:
                name = _decode_session_dir(directory.name)
            except ValueError:
                continue
            session = self._recover_session(directory, name)
            report.skipped_records += session.skipped_records
            if session.open_payload:
                report.sessions.append(session)
            else:
                report.dropped_sessions += 1
        return report

    def _recover_session(self, directory: Path, name: str) -> RecoveredSession:
        session = RecoveredSession(name=name, open_payload={})
        for path in sorted(directory.glob(f"*{_SEGMENT_SUFFIX}")):
            try:
                data = path.read_bytes()
            except OSError:
                session.skipped_records += 1
                continue
            records, skipped = _read_frames(data)
            session.skipped_records += skipped
            for record in records:
                kind = record.get("kind")
                payload = {key: value for key, value in record.items() if key != "kind"}
                if kind in (KIND_OPEN, KIND_SNAPSHOT):
                    session.open_payload = payload
                    session.edits = []
                elif kind == KIND_EDIT:
                    session.edits.append(payload)
                else:
                    session.skipped_records += 1
        return session
