"""Blocking client for the validation service's JSON wire protocol.

:class:`ServiceClient` mirrors the :class:`~repro.server.service
.ValidationService` verb surface over HTTP (stdlib ``http.client``,
keep-alive, one connection per client instance — give each thread its own
client).  It is what ``orm-validate --batch --server URL`` uses, and the
programmatic entry for anything else that wants remote validation::

    with ServiceClient("http://127.0.0.1:8099") as client:
        client.open("design")
        client.edit("design", "add_entity", "Person")
        report = client.report("design")     # the --format json shape
        client.close("design")

Server-reported failures raise :class:`~repro.server.protocol.WireError`
carrying the structured ``code`` (``unknown_session``,
``malformed_request``, ``server_shutdown``, ...) and HTTP status — no
string-matching needed on the caller's side.
"""

from __future__ import annotations

import http.client
import json
from typing import Any
from urllib.parse import urlsplit

from repro.exceptions import ReproError
from repro.io.dsl import write_schema
from repro.orm.schema import Schema
from repro.server import protocol
from repro.server.protocol import Payload, WireError
from repro.tool.validator import ValidatorSettings


class WireTransportError(ReproError):
    """The HTTP conversation itself failed (connect/read), as opposed to
    the server answering with a structured :class:`WireError`."""


class ServiceClient:
    """One keep-alive connection speaking the wire protocol.

    Not thread-safe by design (``http.client`` connections are not);
    concurrency is achieved with one client per thread, which is exactly
    how the multi-client integration tests and the wire benchmark drive a
    server.
    """

    def __init__(
        self, base_url: str, *, timeout: float = 60.0, token: str | None = None
    ) -> None:
        parts = urlsplit(base_url)
        if parts.scheme != "http" or not parts.hostname:
            raise ValueError(
                f"base_url must look like http://host:port, got {base_url!r}"
            )
        self._host = parts.hostname
        self._port = parts.port or 80
        self._timeout = timeout
        self._token = token
        self._conn: http.client.HTTPConnection | None = None

    # -- the verb surface --------------------------------------------------

    def open(
        self,
        session: str,
        *,
        settings: ValidatorSettings | Payload | None = None,
        schema: Schema | str | None = None,
    ) -> Payload:
        """Open a remote session; ``schema`` ships a whole schema in the
        call (a :class:`Schema` is serialized to the ORM text DSL)."""
        payload: Payload = {"session": session}
        if settings is not None:
            if isinstance(settings, ValidatorSettings):
                settings = protocol.settings_to_payload(settings)
            payload["settings"] = settings
        if schema is not None:
            payload["schema_dsl"] = (
                write_schema(schema) if isinstance(schema, Schema) else schema
            )
        return self._request("POST", "/v1/open", payload)

    def edit(self, session: str, verb: str, *args: Any, **kwargs: Any) -> Payload:
        """Apply one edit (no validation — the batched-drain contract);
        returns the created element's ``{"kind", "name"/"label"}``."""
        payload: Payload = {"session": session, "verb": verb}
        if args:
            payload["args"] = list(args)
        if kwargs:
            payload["kwargs"] = kwargs
        result: Payload = self._request("POST", "/v1/edit", payload)["result"]
        return result

    def report(self, session: str) -> Payload:
        """Drain one session and return its report payload
        (:func:`repro.server.protocol.report_to_payload` shape)."""
        report: Payload = self._request("POST", "/v1/report", {"session": session})[
            "report"
        ]
        return report

    def poll_report(self, session: str, if_mark: str | None = None) -> Payload:
        """:meth:`report` with the ETag short-circuit.

        Returns the raw response body: ``{"mark": ..., "report": {...}}``
        on a miss, ``{"mark": ..., "unchanged": true}`` when ``if_mark``
        still names the session's current journal position — the cheap
        way to poll a session that rarely changes::

            state = client.poll_report("design")
            ...
            state = client.poll_report("design", if_mark=state["mark"])
            if not state.get("unchanged"):
                render(state["report"])
        """
        payload: Payload = {"session": session}
        if if_mark is not None:
            payload["if_mark"] = if_mark
        response = self._request("POST", "/v1/report", payload)
        response.pop("ok", None)
        # A wire-v1 server answers without a mark; degrade to markless
        # polling (if_mark=None always fetches the full report) instead of
        # KeyError-ing the documented state["mark"] pattern.
        response.setdefault("mark", None)
        return response

    def check(
        self,
        session: str,
        goal: protocol.Goal | Payload = "strong",
        *,
        max_domain: int = 4,
    ) -> Payload:
        """Complete bounded satisfiability of the session's schema.

        ``goal`` takes the reasoner's goal values (``"strong"`` /
        ``"concept"`` / ``"weak"`` / ``"global"``, or a tuple like
        ``("type", "Person")``) as well as the raw wire object form.
        Returns the verdict payload
        (:func:`repro.server.protocol.verdict_to_payload` shape):
        ``status`` plus a decoded ``witness`` population on ``"sat"``.
        """
        payload: Payload = {"session": session, "max_domain": max_domain}
        if goal is not None:
            payload["goal"] = (
                protocol.goal_to_payload(goal) if isinstance(goal, tuple) else goal
            )
        check: Payload = self._request("POST", "/v1/check", payload)["check"]
        return check

    def close(self, session: str) -> Payload:
        """Close a remote session, returning its final report payload."""
        report: Payload = self._request("POST", "/v1/close", {"session": session})[
            "report"
        ]
        return report

    def drain(
        self, sessions: list[str] | None = None, *, min_pending: int = 1
    ) -> Payload:
        """Trigger one service tick; returns the drain stats payload."""
        payload: Payload = {"min_pending": min_pending}
        if sessions is not None:
            payload["sessions"] = list(sessions)
        return self._request("POST", "/v1/drain", payload)["stats"]

    def resize(self, workers: int) -> Payload:
        """Grow or shrink the server's worker pool at runtime.

        Multi-process deployments live-migrate only the sessions whose
        rendezvous owner changed; an in-process server (workers=0) raises
        the typed ``not_resizable``.  Returns the response body:
        ``{"workers", "previous_workers", "migrated"}``.
        """
        payload: Payload = {"workers": workers}
        return self._request("POST", "/v1/resize", payload)

    def healthz(self) -> Payload:
        """Liveness probe: wire version plus the service census."""
        return self._request("GET", "/healthz")

    # -- plumbing ----------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self._host, self._port, timeout=self._timeout
            )
        return self._conn

    def _request(
        self, method: str, path: str, payload: Payload | None = None
    ) -> Payload:
        body = None
        headers: dict[str, str] = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if self._token is not None:
            headers["Authorization"] = f"Bearer {self._token}"
        # Retry exactly once, and only for the stale keep-alive case: the
        # attempt went over a *reused* socket and either the send itself
        # failed or the server closed the connection without sending one
        # response byte (RemoteDisconnected) — the graceful between-requests
        # close, where the request cannot have been processed.  Anything
        # else (fresh connection, timeout or reset mid-exchange) is NOT
        # retried: the verbs are not idempotent, and re-sending an edit or
        # open a slow server already applied would execute it twice.
        for attempt in (0, 1):
            reused = self._conn is not None
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
            except (http.client.HTTPException, ConnectionError, OSError) as error:
                self.close_connection()
                if attempt or not reused:
                    raise WireTransportError(
                        f"{method} {path} failed to send: {error}"
                    ) from error
                continue
            try:
                response = conn.getresponse()
                data = response.read()
                break
            except http.client.RemoteDisconnected as error:
                self.close_connection()
                if attempt or not reused:
                    raise WireTransportError(
                        f"{method} {path}: connection closed without a response "
                        f"({error})"
                    ) from error
            except (http.client.HTTPException, ConnectionError, OSError) as error:
                # Mid-exchange failure: the server may have applied the
                # request; surface it rather than risk a duplicate.
                self.close_connection()
                raise WireTransportError(
                    f"{method} {path}: no usable response ({error})"
                ) from error
        try:
            parsed = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise WireTransportError(
                f"{method} {path}: server sent non-JSON ({error})"
            ) from None
        if not isinstance(parsed, dict) or not parsed.get("ok"):
            error_info = (parsed or {}).get("error") if isinstance(parsed, dict) else None
            if isinstance(error_info, dict) and "code" in error_info:
                raise WireError(
                    # repro-lint: disable=RL008 -- surfacing the server's already-typed code verbatim
                    error_info["code"],
                    str(error_info.get("message", "")),
                    http_status=response.status,
                )
            raise WireTransportError(
                f"{method} {path}: HTTP {response.status} without a structured error"
            )
        return parsed

    def close_connection(self) -> None:
        """Drop the keep-alive socket (reconnects lazily on next use)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close_connection()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ServiceClient(http://{self._host}:{self._port})"
