"""Sharded per-site finding stores.

The incremental engine keeps one finding store per analysis, keyed by
**site key** (a constraint label, a type name, a ring role-pair — see
:mod:`repro.patterns.base`).  Site keys are also the natural *sharding*
unit of the whole system: a refresh touches exactly the dirty sites, so
two refreshes over disjoint site-key sets never contend on the same shard.
:class:`ShardedSiteStore` makes that partition explicit — a MutableMapping
that splits its entries into a fixed number of shards by a **stable** hash
of the site key (CRC32 of the key's repr, not Python's randomized
``hash``), so the same site lands in the same shard across processes and
runs.

:class:`repro.patterns.incremental.IncrementalEngine` accepts the class as
its ``store_factory``; :class:`repro.server.service.ValidationService`
uses it for every engine it owns.  Shards are plain dicts exposed through
:meth:`ShardedSiteStore.shards`, which is what gives the service loop its
independent units: retraction scans walk shard by shard, and a future
cross-process deployment can map shard index → worker without re-keying
anything.
"""

from __future__ import annotations

import hashlib
import zlib
from typing import Any

from collections.abc import Hashable, Iterator, MutableMapping

#: Default shard count — small enough that per-shard overhead is noise,
#: large enough that disjoint edits on a big schema rarely share a shard.
DEFAULT_SHARDS = 8


def stable_shard_index(key: Hashable, shard_count: int) -> int:
    """The shard a site key belongs to, stable across runs and processes.

    Site keys are strings or (nested) tuples of strings, whose ``repr`` is
    deterministic — CRC32 of that repr gives a platform-independent hash
    (Python's built-in ``hash`` is salted per process and would migrate
    sites between shards on every restart).
    """
    return zlib.crc32(repr(key).encode("utf-8")) % shard_count


def rendezvous_score(worker_index: int, session_name: str) -> int:
    """The rendezvous (HRW) weight of one (worker, session) pairing.

    A keyed BLAKE2b digest, *not* Python's salted ``hash``: the same pair
    scores identically in every process and across restarts, which is
    what lets a restarted router (or any router thread) re-derive every
    placement from names alone.
    """
    digest = hashlib.blake2b(
        f"{worker_index}\x1f{session_name}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def rendezvous_owner(session_name: str, worker_count: int) -> int:
    """The worker index that wins the rendezvous for a session name.

    Highest-random-weight hashing: every worker scores the name, the
    highest score owns it.  Unlike ``hash mod N``, resizing the pool
    N → N±1 re-scores everything but changes the *winner* for only ~1/N
    of the names — the minimal-disruption property the runtime ``resize``
    verb relies on to migrate only the sessions whose owner changed.
    """
    if worker_count < 1:
        raise ValueError(f"worker_count must be >= 1, got {worker_count}")
    return max(
        range(worker_count), key=lambda index: rendezvous_score(index, session_name)
    )


def session_home(session_name: str, worker_count: int) -> int:
    """The worker-process index that owns a session, by name.

    The multi-process router (:class:`repro.server.workers.WorkerPool`)
    places whole *sessions* by rendezvous hashing: routing is stateless —
    any router thread (or a restarted router) derives a session's home
    worker from its name alone, a worker revived in place inherits
    exactly the sessions it owned before dying, and growing or shrinking
    the pool relocates only the ~1/N of sessions whose rendezvous winner
    changed (see :func:`rendezvous_owner`).
    """
    return rendezvous_owner(session_name, worker_count)


class ShardedSiteStore(MutableMapping):
    """A site-key → findings mapping partitioned into stable shards.

    Behaves exactly like a dict for the engine's merge/retract loop; the
    sharding only shows through :attr:`shard_count`, :meth:`shards` and
    :meth:`shard_of`.
    """

    def __init__(self, shard_count: int = DEFAULT_SHARDS) -> None:
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        self._shards: tuple[dict, ...] = tuple({} for _ in range(shard_count))

    @property
    def shard_count(self) -> int:
        """Number of shards (fixed at construction)."""
        return len(self._shards)

    def shard_of(self, key: Hashable) -> int:
        """The shard index the key lives in."""
        return stable_shard_index(key, len(self._shards))

    def shards(self) -> tuple[dict[Any, Any], ...]:
        """The shard dicts themselves, in index order.

        Callers iterate these to process the store shard-by-shard —
        refreshes over disjoint shards are independent (no shared keys by
        construction).
        """
        return self._shards

    # -- MutableMapping protocol ----------------------------------------

    def __getitem__(self, key: Hashable) -> Any:
        return self._shards[self.shard_of(key)][key]

    def __setitem__(self, key: Hashable, value: Any) -> None:
        self._shards[self.shard_of(key)][key] = value

    def __delitem__(self, key: Hashable) -> None:
        del self._shards[self.shard_of(key)][key]

    def __contains__(self, key: Hashable) -> bool:
        return key in self._shards[self.shard_of(key)]

    def __iter__(self) -> Iterator[Hashable]:
        for shard in self._shards:
            yield from shard

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = [len(shard) for shard in self._shards]
        return f"ShardedSiteStore(shards={sizes})"
