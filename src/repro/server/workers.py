"""Multi-process shard workers behind the wire protocol.

The single-process wire front (:mod:`repro.server.wire`) tops out at one
GIL: every session's drain and shard refresh competes for the same
interpreter no matter how many threads the service owns.  The CRC32 site
placement of :mod:`repro.server.sharding` is *process-stable by design*,
and this module cashes that in: a **router** (:class:`WorkerPool`) owns N
**worker subprocesses**, each running a full
:class:`~repro.server.service.ValidationService`, and forwards every
``open/edit/report/check/close/drain`` to the worker that owns the
session — placement is :func:`repro.server.sharding.session_home`,
rendezvous (HRW) hashing of the session name, so routing is derivable
from names alone and survives router and worker restarts alike, and
resizing the pool relocates only the ~1/N of sessions whose rendezvous
winner changed.

**Transport.**  One duplex :mod:`multiprocessing` pipe per worker carrying
newline-free JSON frames: requests are ``{"verb", "payload"}`` envelopes
whose payloads are exactly the :mod:`repro.server.protocol` request
bodies, and responses are exactly the wire response bodies — each worker
simply runs the same :class:`repro.server.wire.LocalBackend` the
single-process server uses.  Workers are spawned (not forked): the router
runs threads, and forking a threaded process is undefined behaviour
waiting to happen.

**Failure model.**  A worker can die at any instant (crash, OOM-kill,
``kill -9``).  The router detects death on the next frame (EOF/broken
pipe/timeout), spawns a replacement in place, and **re-homes** the dead
worker's sessions by replaying each one's *journaled schema snapshot*: the
router records every session's open payload plus the edit payloads
acknowledged since, compacting the window into a schema-DSL snapshot
(:meth:`ValidationService.snapshot_schema`) every ``snapshot_after``
edits — the same snapshot-plus-replay-window shape as
:meth:`repro.patterns.incremental.IncrementalEngine.suspend`/``resume``,
one level up.  Replay is deterministic (schema mutators generate the same
labels from the same state), so a re-homed session's next report is
multiset-equal to an uninterrupted run — property-tested in
``tests/server/test_workers.py``.

**Exactly-once edits, log-before-ack.**  An edit is journaled after the
worker acknowledges it but *before the router acknowledges it to the
client*, inside the same per-session critical section; an edit in flight
when the worker dies is therefore not in the journal, is not replayed,
and is retried exactly once against the replacement — and the retry is
journaled *before* dispatch, because a second death leaves it unknowable
whether the edit applied, and a maybe-applied edit must already be in
the journal when the next replay runs.  With a ``data_dir`` configured,
the same critical section appends the record to the session's durable
segment log (:mod:`repro.server.durability`) and fsyncs it before the
acknowledgement leaves the router (lint rule RL009 enforces the shape),
so a *router* restart recovers every session by snapshot-load + delta
replay (:meth:`WorkerPool._recover`).

**Elasticity.**  The ``resize`` admin verb grows or shrinks the pool at
runtime: new workers are spawned (or doomed ones drained and retired)
and each open session whose rendezvous owner changed is *live-migrated*
— its journal is replayed into the new owner under the session lock,
then the old owner drops its copy with the cheap ``forget`` verb (no
final report).  Sessions whose owner did not change are untouched.

**Handshake.**  Workers greet with their protocol version and verb set;
the router refuses a worker offering an incompatible protocol
(:data:`repro.server.protocol.WORKER_PROTOCOL_MISMATCH`), and a worker
receiving a verb it does not speak answers the typed ``unknown_verb``
error instead of a traceback — the regression net for future protocol
growth.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.server import protocol
from repro.server.durability import (
    KIND_EDIT,
    KIND_OPEN,
    LogStore,
    RecoveredSession,
    SessionLog,
    StorageError,
)
from repro.server.protocol import (
    INTERNAL_ERROR,
    MALFORMED_REQUEST,
    STORAGE_ERROR,
    UNKNOWN_SESSION,
    UNKNOWN_VERB,
    WORKER_FAILED,
    WORKER_PROTOCOL_MISMATCH,
    Payload,
    ResizeRequest,
    WireError,
)
from repro.server.sharding import session_home

if TYPE_CHECKING:
    from multiprocessing.connection import Connection

    from repro.server.service import ValidationService
    from repro.server.wire import LocalBackend
    from repro.tool.validator import ValidatorSettings

#: Version of the router<->worker envelope protocol.  Bumped when a verb
#: changes shape; the router refuses workers greeting a different version.
#: v2 added the ``check`` verb (warm bounded satisfiability).  v3 added
#: ``forget`` (cheap session discard after a live migration, no final
#: report) and forwards ``resize`` so a worker answers it with the typed
#: ``not_resizable`` instead of ``unknown_verb``.  The contract gate
#: (``repro.devtools.contract``) blames this constant for any drift in
#: the worker verb tables against ``docs/protocol_spec.json``.
WORKER_PROTOCOL_VERSION = 3

#: Verbs every worker must speak for the router to accept it.
REQUIRED_WORKER_VERBS = frozenset(
    {
        "open",
        "edit",
        "report",
        "check",
        "close",
        "drain",
        "resize",
        "stats",
        "snapshot",
        "forget",
        "ping",
        "shutdown",
    }
)

#: Workers are spawned, never forked: the router process runs an event
#: loop plus executor threads, and fork() of a threaded process inherits
#: locks in unknown states.
_MP = multiprocessing.get_context("spawn")

#: Timeout multiplier for the verbs whose legitimate work scales with
#: session/schema size (drain ticks, opens shipping whole schemas, report
#: and close drains, schema snapshots, re-homing replays).  The base
#: ``request_timeout`` stays tight for constant-work frames (edit, ping,
#: stats) so hung workers are still detected quickly there.
SLOW_VERB_TIMEOUT_FACTOR = 4.0

#: How long one health probe waits for a busy worker's pipe before
#: reporting it ``busy`` with last-known stats: long enough to ride out a
#: normal drain tick, short enough that /healthz stays inside any
#: orchestrator probe timeout.
PROBE_WAIT = 1.0

#: Upper bound on a single pipe frame.  ``recv_bytes`` trusts the 4-byte
#: length prefix and allocates before reading, so a frame torn by a
#: ``kill -9`` mid-write could otherwise demand gigabytes for garbage;
#: with a bound it raises OSError and lands on the normal worker-death
#: path.  Far above any legitimate frame (whole-schema opens included).
MAX_FRAME_BYTES = 64 * 1024 * 1024


def _worker_main(conn: Connection, config: dict[str, Any]) -> None:
    """Entry point of one worker subprocess: a ValidationService behind a
    serial JSON frame loop (the router serializes requests per worker, so
    the loop needs no concurrency of its own; the service's internal pools
    still parallelize drains across this worker's sessions)."""
    import signal

    from repro.server.service import ValidationService
    from repro.server.wire import LocalBackend

    # Router-led shutdown only: a Ctrl-C on the foreground process group
    # must not kill workers out from under the router's drain/replay.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    settings = None
    if config.get("settings") is not None:
        settings = protocol.settings_from_payload(config["settings"])
    service = ValidationService(settings=settings, **config.get("service", {}))
    backend = LocalBackend(service)
    conn.send_bytes(
        json.dumps(
            {
                "hello": True,
                "protocol_version": WORKER_PROTOCOL_VERSION,
                "verbs": sorted(REQUIRED_WORKER_VERBS),
                "pid": os.getpid(),
            }
        ).encode("utf-8")
    )
    while True:
        try:
            raw = conn.recv_bytes(MAX_FRAME_BYTES)
        except (EOFError, OSError):
            break  # router went away; die quietly
        try:
            request = json.loads(raw.decode("utf-8"))
            verb = request.get("verb")
            payload = request.get("payload") or {}
            if verb == "shutdown":
                conn.send_bytes(b'{"ok": true}')
                break
            response = _worker_dispatch(backend, service, verb, payload)
        except WireError as error:
            response = error.to_payload()
        except Exception as error:  # noqa: BLE001 - the pipe must stay structured
            response = WireError(
                INTERNAL_ERROR, f"{type(error).__name__}: {error}"
            ).to_payload()
        try:
            conn.send_bytes(json.dumps(response).encode("utf-8"))
        except (BrokenPipeError, OSError):
            break
    service.shutdown()


def _worker_dispatch(
    backend: LocalBackend, service: ValidationService, verb: str, payload: Payload
) -> Payload:
    """One worker verb; anything outside the negotiated set is the typed
    ``unknown_verb`` error, never a crash (protocol-growth regression net)."""
    if verb in ("open", "edit", "report", "check", "close", "drain", "resize"):
        # "resize" reaching a worker is answered by LocalBackend's typed
        # not_resizable: only the router's pool can resize.
        return backend.handle(verb, payload)
    if verb == "ping":
        return {"ok": True, "pid": os.getpid()}
    if verb == "stats":
        return {"ok": True, **backend.health_payload()}
    if verb == "forget":
        # Post-migration discard: the session now lives in another worker,
        # so no final drain/report — just drop the state.
        name = payload.get("session")
        if not isinstance(name, str):
            raise WireError(MALFORMED_REQUEST, "forget needs a 'session' name")
        from repro.exceptions import UnknownElementError

        try:
            service.forget(name)
        except UnknownElementError as error:
            raise WireError(UNKNOWN_SESSION, str(error)) from None
        return {"ok": True, "session": name}
    if verb == "snapshot":
        name = payload.get("session")
        if not isinstance(name, str):
            raise WireError(MALFORMED_REQUEST, "snapshot needs a 'session' name")
        from repro.exceptions import UnknownElementError

        try:
            return {"ok": True, "session": name, "schema_dsl": service.snapshot_schema(name)}
        except UnknownElementError as error:
            raise WireError(UNKNOWN_SESSION, str(error)) from None
    raise WireError(
        UNKNOWN_VERB,
        f"worker speaks protocol v{WORKER_PROTOCOL_VERSION} and does not "
        f"understand verb {verb!r}",
    )


class WorkerDied(Exception):
    """Internal: the worker at the other end of a pipe is gone (EOF, broken
    pipe, or response timeout).  Callers revive the worker and retry."""


class WorkerHandle:
    """One live worker subprocess plus its pipe, serialized by a lock.

    The lock covers a full send/receive round trip: workers process frames
    serially, so per-worker serialization at the router loses nothing, and
    requests to *different* workers proceed in parallel — which is the
    whole point of the pool.
    """

    def __init__(
        self,
        index: int,
        config: dict[str, Any],
        *,
        request_timeout: float = 120.0,
        handshake_timeout: float = 60.0,
        expected_protocol: int | None = None,
        defer_handshake: bool = False,
    ) -> None:
        self.index = index
        self._timeout = request_timeout
        self._handshake_timeout = handshake_timeout
        self._expected_protocol = (
            expected_protocol if expected_protocol is not None else WORKER_PROTOCOL_VERSION
        )
        self._lock = threading.Lock()
        self.pid: int = -1
        #: Last stats body this worker answered (the health probe's
        #: fallback when the worker is busy mid-round-trip).
        self.last_stats: Payload | None = None
        parent_conn, child_conn = _MP.Pipe(duplex=True)
        self._conn = parent_conn
        self.process = _MP.Process(
            target=_worker_main,
            args=(child_conn, config),
            name=f"repro-worker-{index}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()  # our copy; the child keeps its own
        if not defer_handshake:
            self.handshake()

    def handshake(self) -> None:
        """Await and validate the worker's hello frame.

        Split from the spawn so a pool can start all N interpreters first
        and then collect the N hellos — startup stays ~one boot time
        instead of N serial boots.  Raises :class:`WorkerDied` (after
        reaping — no zombie from a failed spawn) or the typed
        ``worker_protocol_mismatch`` :class:`WireError`.
        """
        try:
            hello = self._recv(timeout=self._handshake_timeout)
        except WorkerDied:
            self.reap()
            raise
        offered = hello.get("protocol_version")
        missing = REQUIRED_WORKER_VERBS - set(hello.get("verbs") or ())
        if offered != self._expected_protocol or missing:
            self.reap()
            raise WireError(
                WORKER_PROTOCOL_MISMATCH,
                f"worker {self.index} greeted protocol v{offered} "
                f"(router expects v{self._expected_protocol})"
                + (f", missing verbs {sorted(missing)}" if missing else ""),
            )
        self.pid = hello.get("pid", self.process.pid)

    def _recv(self, *, timeout: float) -> Payload:
        try:
            if not self._conn.poll(timeout):
                raise WorkerDied(
                    f"worker {self.index} (pid {self.process.pid}) did not "
                    f"answer within {timeout:.0f}s"
                )
            raw = self._conn.recv_bytes(MAX_FRAME_BYTES)
            return json.loads(raw.decode("utf-8"))
        except WorkerDied:
            self.kill()
            raise
        except (EOFError, OSError, ValueError) as error:
            self.kill()
            raise WorkerDied(
                f"worker {self.index} (pid {self.process.pid}) is gone: {error}"
            ) from error

    def request(
        self, verb: str, payload: Payload | None = None, *, timeout: float | None = None
    ) -> Payload:
        """One round trip; raises :class:`WorkerDied` on any transport
        failure (the response, if any, is then unknowable — callers decide
        whether a retry is safe).  ``timeout`` overrides the handle default
        for verbs whose legitimate work is unbounded in session count
        (a drain tick, a giant open) — a *slow* worker must not be
        mistaken for a hung one and killed mid-work."""
        with self._lock:
            # repro-lint: disable=RL001 -- the pipe IS the critical section: one in-flight frame per worker is the transport invariant
            return self._exchange(verb, payload, timeout)

    def try_request(
        self,
        verb: str,
        payload: Payload | None = None,
        *,
        timeout: float | None = None,
        wait: float = 0.0,
    ) -> Payload | None:
        """:meth:`request` with a bounded wait for the pipe: returns
        ``None`` when another thread is still mid-round-trip after
        ``wait`` seconds (the worker is *busy*, which is itself an answer
        — it is alive and serving).  Used by the health probe so
        ``/healthz`` rides out a normal drain tick but never queues
        behind a pathologically long one."""
        if wait > 0:
            acquired = self._lock.acquire(timeout=wait)
        else:
            acquired = self._lock.acquire(blocking=False)
        if not acquired:
            return None
        try:
            return self._exchange(verb, payload, timeout)
        finally:
            self._lock.release()

    def _exchange(
        self, verb: str, payload: Payload | None, timeout: float | None
    ) -> Payload:
        """One frame out, one frame back.  Caller holds ``self._lock``."""
        frame = json.dumps({"verb": verb, "payload": payload or {}}).encode("utf-8")
        try:
            self._conn.send_bytes(frame)
        except (BrokenPipeError, OSError, ValueError) as error:
            self.kill()
            raise WorkerDied(
                f"worker {self.index} (pid {self.process.pid}) is gone: {error}"
            ) from error
        return self._recv(timeout=timeout if timeout is not None else self._timeout)

    def checked(
        self, verb: str, payload: Payload | None = None, *, timeout: float | None = None
    ) -> Payload:
        """:meth:`request`, re-raising a worker error body as WireError."""
        response = self.request(verb, payload, timeout=timeout)
        if not isinstance(response, dict) or "ok" not in response:
            raise WireError(
                INTERNAL_ERROR, f"worker {self.index} sent a malformed response"
            )
        if not response["ok"]:
            error = response.get("error") or {}
            raise WireError(
                # repro-lint: disable=RL008 -- forwarding the worker's already-typed code verbatim
                error.get("code", INTERNAL_ERROR),
                error.get("message", "worker error"),
            )
        return response

    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        """Hard-stop the subprocess and drop the pipe (idempotent)."""
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if self.process.is_alive():
            self.process.kill()

    def reap(self, timeout: float = 5.0) -> None:
        """Join the (dead or killed) subprocess so no zombie lingers."""
        self.kill()
        self.process.join(timeout=timeout)


class _RoutedSession:
    """The router's journal of one session: everything needed to re-home
    it into a fresh worker.  ``lock`` serializes this session's journal
    mutations with the worker round trips that justify them.

    ``home`` is the worker index this session currently lives in —
    assigned from the rendezvous winner at open (or recovery) time and
    changed only by a live migration, under ``lock``, so requests routed
    mid-resize always reach the worker that actually holds the session.
    ``log`` is the session's durable segment log (``None`` when the pool
    runs without a ``data_dir``).
    """

    __slots__ = ("name", "lock", "opened", "open_payload", "edits", "home", "log")

    def __init__(self, name: str, home: int) -> None:
        self.name = name
        self.lock = threading.Lock()
        self.opened = False
        self.open_payload: Payload = {"session": name}
        self.edits: list[Payload] = []
        self.home = home
        self.log: SessionLog | None = None


class WorkerPool:
    """The router: N worker subprocesses behind the wire-verb surface.

    Implements the same backend interface as
    :class:`repro.server.wire.LocalBackend` (``handle`` /
    ``health_payload`` / ``tick`` / ``shutdown``), so
    :class:`repro.server.wire.WireServer` — and therefore every PR-4
    client — is indifferent to whether one process or N serve the
    session.  Construct via ``WireServer(workers=N, ...)`` or directly.

    Parameters
    ----------
    workers:
        Number of worker subprocesses (the initial rendezvous membership;
        grow/shrink at runtime with the ``resize`` verb).
    settings:
        Default :class:`ValidatorSettings` profile (or its wire payload)
        for the workers' services.
    snapshot_after:
        Edits per session before the re-homing journal is compacted into
        a schema-DSL snapshot (bounding replay cost, router memory and
        durable-log length).
    request_timeout:
        Seconds a worker may take to answer one frame before it is
        declared dead and replaced.
    data_dir:
        Directory for the durable per-session segment logs
        (:mod:`repro.server.durability`).  When set, every acknowledged
        open/edit is fsync'd there before the ack, and constructing a
        pool over an existing ``data_dir`` recovers every logged session
        by snapshot-load + delta replay.  ``None`` keeps the journal
        router-memory only (a worker crash is survivable, a router crash
        loses sessions).
    **service_kwargs:
        Forwarded to each worker's :class:`ValidationService`
        (``max_workers``, ``max_live_engines``, ``max_live_sites``,
        ``store_shards``).
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        settings: ValidatorSettings | Payload | None = None,
        snapshot_after: int = 64,
        request_timeout: float = 120.0,
        data_dir: str | Path | None = None,
        **service_kwargs: Any,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if snapshot_after < 1:
            raise ValueError(f"snapshot_after must be >= 1, got {snapshot_after}")
        settings_payload = None
        if settings is not None:
            settings_payload = (
                settings
                if isinstance(settings, dict)
                else protocol.settings_to_payload(settings)
            )
        self._config = {"settings": settings_payload, "service": dict(service_kwargs)}
        self._snapshot_after = snapshot_after
        self._request_timeout = request_timeout
        self._slow_timeout = request_timeout * SLOW_VERB_TIMEOUT_FACTOR
        self._count = workers
        handles: list[WorkerHandle] = []
        try:
            # Start all N interpreters first, then collect the N hellos:
            # pool startup costs ~one worker boot, not N serial ones.
            for index in range(workers):
                handles.append(self._spawn(index, defer_handshake=True))
            for handle in handles:
                handle.handshake()
        except WorkerDied as error:
            # A later spawn failing must not orphan the earlier workers
            # (they would sit in recv_bytes forever), nor leak the
            # internal WorkerDied type out of the public constructor.
            for handle in handles:
                handle.reap()
            raise WireError(
                WORKER_FAILED, f"worker pool failed to start: {error}"
            ) from error
        except WireError:  # protocol mismatch: already typed, still reap
            for handle in handles:
                handle.reap()
            raise
        self._handles = handles
        self._sessions: dict[str, _RoutedSession] = {}
        self._registry_lock = threading.Lock()
        self._revive_lock = threading.Lock()
        # Sized for the resize ceiling, not the starting count: a resized
        # pool keeps its executors, and ThreadPoolExecutor only spawns
        # threads on demand, so the high bound costs nothing up front.
        self._fanout = ThreadPoolExecutor(
            max_workers=protocol.MAX_RESIZE_WORKERS, thread_name_prefix="repro-router"
        )
        # Health probes get their own small pool: the fan-out pool's N
        # threads can all be occupied by an in-flight drain tick, and a
        # liveness probe queueing behind a long drain is exactly what
        # /healthz must never do.
        self._probe_pool = ThreadPoolExecutor(
            max_workers=protocol.MAX_RESIZE_WORKERS, thread_name_prefix="repro-probe"
        )
        self._restarts = 0
        self._rehomed_sessions = 0
        self._dropped_sessions = 0
        self._resizes = 0
        self._migrated_sessions = 0
        self._recovered_sessions = 0
        self._log_skipped_records = 0
        self._closing = False
        #: Test seam: called with the session name after a migration's
        #: replay reached the new owner but before the old owner forgets —
        #: the fault harness injects mid-migration crashes here.
        self._migration_fault_hook: Callable[[str], None] | None = None
        self._logs = LogStore(data_dir) if data_dir is not None else None
        if self._logs is not None:
            try:
                self._recover()
            except WorkerDied as error:
                self.shutdown()
                raise WireError(
                    WORKER_FAILED, f"session recovery failed: {error}"
                ) from error

    # -- the backend surface (what WireServer drives) ---------------------

    def handle(self, verb: str, payload: Payload) -> Payload:
        if verb == "open":
            return self._open(payload)
        if verb == "edit":
            return self._edit(payload)
        if verb == "report":
            return self._slow_routed("report", payload)
        if verb == "check":
            # A SAT sweep's legitimate work scales with schema and domain
            # size, like a report's drain — slow-verb budget.
            return self._slow_routed("check", payload)
        if verb == "close":
            return self._close(payload)
        if verb == "drain":
            return self._drain(payload)
        if verb == "resize":
            return self._resize(payload)
        raise WireError(UNKNOWN_VERB, f"no such wire verb: {verb!r}")

    def health_payload(self) -> Payload:
        """Aggregate census: summed service stats plus the worker roster.

        Built to stay *probe-fast* whatever the workers are doing: all
        workers are probed in parallel on a dedicated probe pool (the
        fan-out pool may be fully occupied by a drain tick), each probe
        waits at most :data:`PROBE_WAIT` seconds for the worker's pipe —
        long enough to ride out a normal drain tick, bounded so a
        pathologically long one cannot stall liveness — and a worker
        still busy after that is reported ``busy`` with its last-known
        stats folded into the totals (alive and serving; its numbers are
        merely one probe stale).  Probing a *dead* worker answers
        immediately and kicks its revival (and re-homing) off in the
        background, so a periodic ``/healthz`` doubles as the crash
        detector even on an otherwise idle server without ever blocking
        on a replay.
        """
        probes = list(self._probe_pool.map(self._probe_stats, range(self._count)))
        totals: dict[str, int] = {}
        reachable = busy = 0
        for stats, state in probes:
            if state == "busy":
                busy += 1
            if state == "ok":
                reachable += 1
            if stats is None:
                continue
            for key, value in stats.items():
                if isinstance(value, (int, float)):
                    totals[key] = totals.get(key, 0) + value
        with self._registry_lock:
            routed = len(self._sessions)
        handles = list(self._handles)  # a resize may mutate the roster
        return {
            "stats": totals,
            "workers": {
                "count": self._count,
                "alive": sum(1 for h in handles if h.alive()),
                "reachable": reachable,
                "busy": busy,
                "pids": [h.pid for h in handles],
                "restarts": self._restarts,
                "rehomed_sessions": self._rehomed_sessions,
                "dropped_sessions": self._dropped_sessions,
                "routed_sessions": routed,
                "resizes": self._resizes,
                "migrated_sessions": self._migrated_sessions,
                "recovered_sessions": self._recovered_sessions,
                "log_skipped_records": self._log_skipped_records,
            },
        }

    def _probe_stats(self, index: int) -> tuple[Payload | None, str]:
        """One worker's census probe: ``(stats_or_None, state)``."""
        try:
            handle = self._handles[index]
        except IndexError:  # the probe raced a shrink; the worker is gone
            return None, "unreachable"
        try:
            response = handle.try_request("stats", {}, wait=PROBE_WAIT)
        except WorkerDied:
            # Dead: kick the revival (and its re-homing replay) off in the
            # background and answer the probe *now* — a liveness probe
            # stalling for the whole replay would get the router restarted
            # by its orchestrator exactly mid-recovery.  Any direct
            # request racing this still revives synchronously via
            # :meth:`_forward`; the counters record whichever won.
            if self._closing:
                return None, "unreachable"
            try:
                future = self._fanout.submit(self._revive_quietly, index, handle)
            except RuntimeError:  # probe raced shutdown(): executor is gone
                return None, "unreachable"
            future.add_done_callback(lambda f: f.exception())  # consumed
            return None, "reviving"
        if response is None:
            return handle.last_stats, "busy"
        if isinstance(response, dict) and response.get("ok"):
            handle.last_stats = response.get("stats")
            return handle.last_stats, "ok"
        return None, "error"

    def _revive_quietly(self, index: int, dead: WorkerHandle) -> None:
        """Background revival for the health probe (failures are left for
        the next direct request to surface as typed errors)."""
        try:
            self._revive(index, dead)
        except WireError:
            pass

    def tick(self) -> None:
        """One background drain pass across every worker (in parallel)."""
        self._drain({})

    def shutdown(self) -> None:
        self._closing = True
        # Serialize with any in-flight revival: either it finished (its
        # replacement is in _handles and gets shut down below) or it has
        # not taken the revive lock yet (and will then see _closing and
        # refuse to spawn) — no replacement can be spawned-but-missed.
        with self._revive_lock:
            handles = list(self._handles)
        for handle in handles:
            try:
                handle.request("shutdown")
            except WorkerDied:
                pass
            handle.reap()
        self._fanout.shutdown(wait=False)
        self._probe_pool.shutdown(wait=False)
        # The durable logs outlive the pool by design (a restart recovers
        # from them); only the open file handles are released here.
        with self._registry_lock:
            entries = list(self._sessions.values())
        for entry in entries:
            if entry.log is not None:
                entry.log.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -- queries -----------------------------------------------------------

    @property
    def worker_count(self) -> int:
        return self._count

    def worker_pids(self) -> list[int]:
        """Current pid per worker index (changes when a worker is revived)."""
        return [handle.pid for handle in self._handles]

    def home_of(self, session_name: str) -> int:
        """The worker index that owns a session.

        An open session answers with the home it actually lives in (which
        tracks migrations); an unknown name answers with the rendezvous
        winner it *would* be placed in.
        """
        with self._registry_lock:
            entry = self._sessions.get(session_name)
            if entry is not None:
                return entry.home
        return session_home(session_name, self._count)

    # -- verb routing ------------------------------------------------------

    def _session_name(self, payload: Payload) -> str:
        name = payload.get("session") if isinstance(payload, dict) else None
        if not isinstance(name, str):
            raise WireError(MALFORMED_REQUEST, "missing required field 'session'")
        return name

    def _open(self, payload: Payload) -> Payload:
        name = self._session_name(payload)
        with self._registry_lock:
            entry = self._sessions.get(name)
            if entry is None:
                entry = _RoutedSession(name, session_home(name, self._count))
                self._sessions[name] = entry
        try:
            return self._open_routed(entry, payload)
        except WireError:
            with self._registry_lock:
                if not entry.opened and self._sessions.get(name) is entry:
                    del self._sessions[name]
            raise

    def _open_routed(self, entry: _RoutedSession, payload: Payload) -> Payload:
        dead: WorkerHandle | None = None
        dead_home = -1
        failure: WorkerDied | None = None
        for _attempt in range(2):
            if dead is not None:
                self._revive(dead_home, dead)
            with entry.lock:
                handle = self._handles[entry.home]
                try:
                    # repro-lint: disable=RL001 -- journal order must match worker order: the round trip completes under the session lock
                    response = handle.checked(
                        "open", payload, timeout=self._slow_timeout
                    )
                except WorkerDied as error:
                    dead, dead_home, failure = handle, entry.home, error
                    continue
                # Log-before-ack: the open record is durable before the
                # client hears the session exists.
                self._log_open(entry, payload, handle)
                entry.opened = True
                entry.open_payload = payload
                entry.edits = []
                return response
        raise WireError(
            WORKER_FAILED,
            f"worker {dead_home} kept failing after revival "
            f"('open' not answered: {failure})",
        )

    def _edit(self, payload: Payload) -> Payload:
        name = self._session_name(payload)
        with self._registry_lock:
            entry = self._sessions.get(name)
        if entry is None:
            # Never opened here: let the worker produce the typed 404.
            return self._forward(session_home(name, self._count), "edit", payload)
        return self._edit_routed(entry, payload)

    def _edit_routed(self, entry: _RoutedSession, payload: Payload) -> Payload:
        """One journaled edit: worker round trip, durable log append, ack.

        The invariant is **log-before-ack** (lint rule RL009): every path
        that returns an acknowledgement calls :meth:`_log_append` first.
        The first attempt logs after the worker accepts (a rejected edit
        is never journaled); the *retry* after a worker death logs before
        dispatch — the first death left it unknowable whether the edit
        applied, so if the retry's worker also dies after maybe applying
        it, the record must already be durable for the next replay (the
        PR-10 fix: the old journal-on-success-only retry dropped exactly
        that record).  A retry the worker then *rejects* is rolled back
        from both journals — a typed rejection proves it never applied.
        """
        dead: WorkerHandle | None = None
        dead_home = -1
        failure: WorkerDied | None = None
        for attempt in range(2):
            if dead is not None:
                self._revive(dead_home, dead)
            with entry.lock:
                handle = self._handles[entry.home]
                retried = attempt > 0
                rollback = -1
                if retried:
                    rollback = self._log_append(entry, KIND_EDIT, payload, handle)
                    entry.edits.append(payload)
                try:
                    # repro-lint: disable=RL001 -- journal order must match worker order: the round trip completes under the session lock
                    response = handle.checked("edit", payload)
                except WorkerDied as error:
                    # The retry's journal entry (if any) is deliberately
                    # kept: the worker may have applied the edit.
                    dead, dead_home, failure = handle, entry.home, error
                    continue
                except WireError:
                    if retried:  # typed rejection: definitively not applied
                        entry.edits.pop()
                        self._log_rollback(entry, rollback)
                    raise
                if not retried:
                    self._log_append(entry, KIND_EDIT, payload, handle)
                # repro-lint: disable=RL001 -- compaction inside the ack must be atomic with the journal window it collapses
                return self._ack_edit(entry, payload, response, journaled=retried)
        raise WireError(
            WORKER_FAILED,
            f"worker {dead_home} kept failing after revival "
            f"('edit' not answered: {failure})",
        )

    def _ack_edit(
        self,
        entry: _RoutedSession,
        payload: Payload,
        response: Payload,
        *,
        journaled: bool = False,
    ) -> Payload:
        """Finalize an acknowledged edit: memory-journal it (unless the
        retry path journaled it pre-dispatch) and compact a full window.
        Callers must have made the durable record first — RL009 checks
        that a ``_log_append`` call dominates every call to this method.
        """
        if not journaled:
            entry.edits.append(payload)
        if len(entry.edits) >= self._snapshot_after:
            # repro-lint: disable=RL001 -- compaction's snapshot round trip must be atomic with the journal window it collapses
            self._compact(entry)
        return response

    def _close(self, payload: Payload) -> Payload:
        name = self._session_name(payload)
        with self._registry_lock:
            entry = self._sessions.get(name)
        if entry is None:
            return self._forward(
                session_home(name, self._count), "close", payload,
                timeout=self._slow_timeout,
            )
        return self._close_routed(entry, payload)

    def _close_routed(self, entry: _RoutedSession, payload: Payload) -> Payload:
        dead: WorkerHandle | None = None
        dead_home = -1
        failure: WorkerDied | None = None
        for _attempt in range(2):
            if dead is not None:
                self._revive(dead_home, dead)
            with entry.lock:
                handle = self._handles[entry.home]
                try:
                    # repro-lint: disable=RL001 -- journal order must match worker order: the round trip completes under the session lock
                    response = handle.checked(
                        "close", payload, timeout=self._slow_timeout
                    )
                except WorkerDied as error:
                    dead, dead_home, failure = handle, entry.home, error
                    continue
                self._discard_log(entry)
                with self._registry_lock:
                    if self._sessions.get(entry.name) is entry:
                        del self._sessions[entry.name]
                return response
        raise WireError(
            WORKER_FAILED,
            f"worker {dead_home} kept failing after revival "
            f"('close' not answered: {failure})",
        )

    def _slow_routed(self, verb: str, payload: Payload) -> Payload:
        """Route a read verb (report/check) to the session's live home.

        Runs under the session lock so a request can never race a live
        migration onto a worker that already forgot the session; unknown
        names fall through to the rendezvous winner, whose worker answers
        the typed 404.
        """
        name = self._session_name(payload)
        with self._registry_lock:
            entry = self._sessions.get(name)
        if entry is None:
            return self._forward(
                session_home(name, self._count), verb, payload,
                timeout=self._slow_timeout,
            )
        dead: WorkerHandle | None = None
        dead_home = -1
        failure: WorkerDied | None = None
        for _attempt in range(2):
            if dead is not None:
                self._revive(dead_home, dead)
            with entry.lock:
                handle = self._handles[entry.home]
                try:
                    # repro-lint: disable=RL001 -- routed reads hold the session lock so migration cannot strand them on an old owner
                    return handle.checked(verb, payload, timeout=self._slow_timeout)
                except WorkerDied as error:
                    dead, dead_home, failure = handle, entry.home, error
                    continue
        raise WireError(
            WORKER_FAILED,
            f"worker {dead_home} kept failing after revival "
            f"({verb!r} not answered: {failure})",
        )

    def _drain(self, payload: Payload) -> Payload:
        min_pending = payload.get("min_pending")
        sessions = payload.get("sessions")
        per_worker: dict[int, dict] = {}
        if sessions is None:
            for index in range(self._count):
                per_worker[index] = {}
        else:
            if not isinstance(sessions, list) or not all(
                isinstance(n, str) for n in sessions
            ):
                raise WireError(MALFORMED_REQUEST, "'sessions' must be a list of names")
            # Validate every name up front so an unknown one drains
            # *nothing* — the in-process service errors while building its
            # target list, and the two backends must not diverge on that.
            # (The worker still backstops the error for races with close.)
            with self._registry_lock:
                missing = [n for n in sessions if n not in self._sessions]
                homes = {
                    n: self._sessions[n].home for n in sessions if n not in missing
                }
            if missing:
                raise WireError(UNKNOWN_SESSION, f"unknown session: '{missing[0]}'")
            for name in sessions:
                index = homes[name]
                per_worker.setdefault(index, {"sessions": []})
                per_worker[index]["sessions"].append(name)
        if min_pending is not None:
            for sub in per_worker.values():
                sub["min_pending"] = min_pending
        futures = {
            index: self._fanout.submit(
                self._forward, index, "drain", sub, timeout=self._slow_timeout
            )
            for index, sub in per_worker.items()
        }
        # Zero-seeded so an empty tick (e.g. "sessions": []) returns the
        # same zeroed DrainStats shape as the in-process backend.
        totals: dict[str, int] = {
            "examined": 0, "drained": 0, "changes": 0, "resumed": 0, "rebuilt": 0
        }
        for future in futures.values():
            stats = future.result()["stats"]  # WireError propagates as-is
            for key, value in stats.items():
                totals[key] = totals.get(key, 0) + value
        return {"ok": True, "stats": totals}

    # -- forwarding, death detection, re-homing ----------------------------

    def _forward(
        self,
        index: int,
        verb: str,
        payload: Payload,
        *,
        timeout: float | None = None,
    ) -> Payload:
        """One unjournaled round trip with revive-and-retry (drain ticks,
        and verbs for sessions this router never journaled — the worker
        backstops those with the typed 404).  The revive wait never holds
        a session lock, so it cannot deadlock against the replay sweep."""
        dead: WorkerHandle | None = None
        failure: WorkerDied | None = None
        for _attempt in range(2):
            if dead is not None:
                self._revive(index, dead)
            if index >= len(self._handles):  # raced a shrink
                raise WireError(WORKER_FAILED, f"worker {index} was retired")
            handle = self._handles[index]
            try:
                return handle.checked(verb, payload, timeout=timeout)
            except WorkerDied as error:
                dead, failure = handle, error
                continue
        raise WireError(
            WORKER_FAILED,
            f"worker {index} kept failing after revival "
            f"({verb!r} not answered: {failure})",
        )

    def _compact(self, entry: _RoutedSession) -> None:
        """Collapse a session's journal to a schema-DSL snapshot.

        Called under ``entry.lock`` from the edit path, so it must never
        wait on revival: a dead worker simply postpones compaction to a
        later edit (the journal stays replayable throughout).  The durable
        log compacts first — if its snapshot segment cannot be written,
        the in-memory window is kept too, so both journals always rebuild
        the same state."""
        handle = self._handles[entry.home]
        try:
            # Serializing a whole schema is O(schema size), same as an
            # open — slow-verb timeout, or a big session's routine
            # compaction would "time out" and kill a healthy worker.
            snapshot = handle.checked(
                "snapshot", {"session": entry.name}, timeout=self._slow_timeout
            )
        except (WorkerDied, WireError):
            return
        refreshed = dict(entry.open_payload)
        refreshed["schema_dsl"] = snapshot["schema_dsl"]
        if entry.log is not None:
            try:
                entry.log.compact(refreshed)
            except StorageError:
                # The uncompacted segments still replay; retry at the next
                # window boundary.
                return
        entry.open_payload = refreshed
        entry.edits = []

    def _revive(self, index: int, dead: WorkerHandle) -> None:
        """Replace a dead worker and re-home its sessions by replay.

        Serialized on one lock: concurrent observers of the same death
        queue up here and find the worker already replaced (``is not
        dead``).  Each session's journal is copied and replayed under its
        own lock, taken one at a time — threads blocked on this revival
        never hold a session lock (see :meth:`_forward`), so the sweep
        cannot deadlock.
        """
        with self._revive_lock:
            if index >= len(self._handles):
                return  # a shrink already retired this worker index
            if self._handles[index] is not dead:
                return  # somebody else already revived this worker
            if self._closing:
                raise WireError(WORKER_FAILED, "router is shutting down")
            # repro-lint: disable=RL001 -- revival is single-flight by design; reaping joins an already-dead process (bounded wait)
            dead.reap()
            try:
                fresh = self._spawn(index)
            except WorkerDied as error:
                # The replacement itself failed to come up (crash before
                # the hello frame, handshake timeout): keep the failure on
                # the documented worker_failed/503 contract — WorkerDied is
                # internal and must not leak as a 500.  The dead handle
                # stays installed; a later request retries the revival.
                raise WireError(
                    WORKER_FAILED,
                    f"could not spawn a replacement for worker {index}: {error}",
                ) from error
            with self._registry_lock:
                homed = [
                    entry
                    for entry in self._sessions.values()
                    if entry.home == index
                ]
            rehomed = 0
            dropped: list[str] = []
            for entry in homed:
                with entry.lock:
                    if not entry.opened:
                        continue
                    try:
                        # repro-lint: disable=RL001 -- re-homing replays the journal under the session lock so no edit interleaves mid-replay
                        fresh.checked(
                            "open", entry.open_payload, timeout=self._slow_timeout
                        )
                        for edit in entry.edits:
                            # repro-lint: disable=RL001 -- same replay transaction as the open above
                            fresh.checked("edit", edit)
                        rehomed += 1
                    except WorkerDied as error:
                        # repro-lint: disable=RL001 -- the replacement just died; joining it is bounded and nothing else can hold this fresh handle yet
                        fresh.reap()
                        raise WireError(
                            WORKER_FAILED,
                            f"replacement worker {index} died during re-homing: "
                            f"{error}",
                        ) from error
                    except WireError:
                        # The journal no longer replays (should not happen:
                        # replay is deterministic) — drop the session rather
                        # than poison the whole worker, and close whatever
                        # prefix already applied so the fresh worker cannot
                        # keep serving a half-replayed schema under the
                        # dropped name.
                        dropped.append(entry.name)
                        self._discard_log(entry)
                        try:
                            # repro-lint: disable=RL001 -- closing the half-replayed prefix is part of the same replay transaction
                            fresh.checked("close", {"session": entry.name})
                        except (WorkerDied, WireError):
                            pass
            if dropped:
                with self._registry_lock:
                    for name in dropped:
                        self._sessions.pop(name, None)
            self._handles[index] = fresh
            self._restarts += 1
            self._rehomed_sessions += rehomed
            self._dropped_sessions += len(dropped)

    # -- runtime resize and live migration ---------------------------------

    def _resize(self, payload: Payload) -> Payload:
        """Grow or shrink the pool, live-migrating owner-changed sessions.

        Serialized on the revive lock (a resize and a revival must not
        rewire the roster concurrently).  Only sessions whose rendezvous
        winner changed move — each is replayed into its new owner under
        its session lock, then dropped from the old owner with ``forget``
        — so a resize N → N±1 touches ~1/N of the sessions and leaves
        every other session's placement (and cache warmth) alone.
        """
        request = ResizeRequest.from_payload(payload)
        new = request.workers
        with self._revive_lock:
            if self._closing:
                raise WireError(WORKER_FAILED, "router is shutting down")
            old = self._count
            if new == old:
                migrated = 0
            elif new > old:
                # repro-lint: disable=RL001 -- resize is single-flight by design: the roster must not change under the migration sweep
                migrated = self._grow(new)
            else:
                # repro-lint: disable=RL001 -- resize is single-flight by design: the roster must not change under the migration sweep
                migrated = self._shrink(new)
            if new != old:
                self._resizes += 1
                self._migrated_sessions += migrated
        return {
            "ok": True,
            "workers": new,
            "previous_workers": old,
            "migrated": migrated,
        }

    def _grow(self, new: int) -> int:
        """Add workers; caller holds the revive lock."""
        spawned: list[WorkerHandle] = []
        try:
            for index in range(self._count, new):
                spawned.append(self._spawn(index, defer_handshake=True))
            for handle in spawned:
                handle.handshake()
        except WorkerDied as error:
            for handle in spawned:
                handle.reap()
            raise WireError(
                WORKER_FAILED, f"resize could not start new workers: {error}"
            ) from error
        except WireError:
            for handle in spawned:
                handle.reap()
            raise
        self._handles.extend(spawned)
        # Flip the count and snapshot the registry in one critical section:
        # every session is either in this snapshot (migrated below if its
        # owner changed) or was opened after the flip (placed by the new
        # membership already) — no session can fall between.
        with self._registry_lock:
            self._count = new
            entries = list(self._sessions.values())
        return self._migrate(entries)

    def _shrink(self, new: int) -> int:
        """Retire workers; caller holds the revive lock.

        The count flips first (new opens land on survivors), the doomed
        workers' sessions are migrated off while those workers still
        serve, and only then are they shut down and dropped from the
        roster.
        """
        with self._registry_lock:
            self._count = new
            entries = list(self._sessions.values())
        migrated = self._migrate(entries)
        doomed = self._handles[new:]
        del self._handles[new:]
        for handle in doomed:
            try:
                handle.request("shutdown")
            except WorkerDied:
                pass
            handle.reap()
        return migrated

    def _migrate(self, entries: list[_RoutedSession]) -> int:
        """Move every owner-changed session to its new rendezvous winner."""
        migrated = 0
        for entry in entries:
            with entry.lock:
                target = session_home(entry.name, self._count)
                if target == entry.home or not entry.opened:
                    continue
                # repro-lint: disable=RL001 -- migration replays the journal under the session lock so no edit interleaves mid-copy
                self._migrate_session(entry, target)
                migrated += 1
        return migrated

    def _migrate_session(self, entry: _RoutedSession, target: int) -> None:
        """Replay one session into ``target``, then forget it at the old
        owner.  Caller holds ``entry.lock``.

        Owner-change-only migration is crash-safe in either direction: a
        crash before the ``forget`` leaves both workers holding the
        session, and recovery (or the next replay) re-derives the single
        owner from the rendezvous — the durable log, not either worker's
        memory, is the source of truth.
        """
        source = self._handles[entry.home]
        fresh = self._handles[target]
        try:
            fresh.checked("open", entry.open_payload, timeout=self._slow_timeout)
            for edit in entry.edits:
                fresh.checked("edit", edit)
        except WorkerDied as error:
            raise WireError(
                WORKER_FAILED,
                f"worker {target} died while receiving session "
                f"{entry.name!r}: {error}",
            ) from error
        except WireError:
            # The journal no longer replays (should not happen: replay is
            # deterministic) — drop the session rather than leave it split
            # across two workers, mirroring the revival path.
            self._discard_log(entry)
            try:
                fresh.checked("close", {"session": entry.name})
            except (WorkerDied, WireError):
                pass
            with self._registry_lock:
                self._sessions.pop(entry.name, None)
            self._dropped_sessions += 1
            return
        hook = self._migration_fault_hook
        if hook is not None:
            hook(entry.name)
        try:
            source.checked("forget", {"session": entry.name})
        except (WorkerDied, WireError):
            # The old owner is gone or already forgot it; the target holds
            # the authoritative copy either way.
            pass
        entry.home = target

    # -- the durable session log -------------------------------------------

    def _log_open(
        self, entry: _RoutedSession, payload: Payload, handle: WorkerHandle
    ) -> None:
        """Durably record a session's open (or re-open) before the ack."""
        if self._logs is None:
            return
        try:
            if entry.log is None:
                entry.log = self._logs.open_log(entry.name)
            entry.log.append(KIND_OPEN, payload)
        except StorageError as error:
            self._refuse_unlogged(entry, handle, error)

    def _log_append(
        self,
        entry: _RoutedSession,
        kind: str,
        payload: Payload,
        handle: WorkerHandle,
    ) -> int:
        """Durably append one record; returns the rollback offset.

        This is the RL009 choke point: every router path that acks an
        edit calls here first, and a failed append *refuses* the request
        (``storage_error``) instead of acknowledging something the log
        does not hold.
        """
        if entry.log is None:
            return -1
        try:
            return entry.log.append(kind, payload)
        except StorageError as error:
            self._refuse_unlogged(entry, handle, error)
            raise AssertionError("unreachable") from error  # pragma: no cover

    def _log_rollback(self, entry: _RoutedSession, offset: int) -> None:
        """Undo a pre-dispatch append the worker then rejected."""
        if entry.log is not None and offset >= 0:
            entry.log.rollback_to(offset)

    def _refuse_unlogged(
        self, entry: _RoutedSession, handle: WorkerHandle, error: StorageError
    ) -> None:
        """A durable append failed after the worker already applied the
        request: the worker's state is now ahead of the log, so the worker
        is killed — its replacement replays from the journal, restoring
        log-and-state agreement — and the client gets the typed
        ``storage_error`` instead of an acknowledgement."""
        handle.kill()
        raise WireError(
            STORAGE_ERROR,
            f"session {entry.name!r}: could not durably log the request "
            f"({error}); the edit was not acknowledged",
        ) from error

    def _discard_log(self, entry: _RoutedSession) -> None:
        """Drop a session's durable log (clean close, drop, migration of a
        session that no longer replays)."""
        if entry.log is not None:
            entry.log.delete()
            entry.log = None
        elif self._logs is not None:
            self._logs.discard(entry.name)

    def _recover(self) -> None:
        """Rebuild every logged session after a router restart.

        Snapshot-load + delta replay: the durable log yields each
        session's latest baseline (open payload or compacted snapshot)
        plus the edit window after it; each is replayed into its
        rendezvous owner, in parallel across workers.  Torn or corrupt
        log tails were already skipped (and counted) by
        :meth:`repro.server.durability.LogStore.recover`; a session whose
        journal no longer replays is dropped and counted, never raised.
        """
        assert self._logs is not None
        logs = self._logs
        report = logs.recover()
        self._log_skipped_records += report.skipped_records
        self._dropped_sessions += report.dropped_sessions
        by_home: dict[int, list[RecoveredSession]] = {}
        for recovered in report.sessions:
            home = session_home(recovered.name, self._count)
            by_home.setdefault(home, []).append(recovered)

        def replay_home(
            home: int, batch: list[RecoveredSession]
        ) -> tuple[int, int]:
            handle = self._handles[home]
            recovered_count = dropped_count = 0
            for recovered in batch:
                entry = _RoutedSession(recovered.name, home)
                entry.opened = True
                entry.open_payload = recovered.open_payload
                entry.edits = list(recovered.edits)
                try:
                    handle.checked(
                        "open", recovered.open_payload, timeout=self._slow_timeout
                    )
                    for edit in recovered.edits:
                        handle.checked("edit", edit)
                except WireError:
                    logs.discard(recovered.name)
                    dropped_count += 1
                    continue
                entry.log = logs.open_log(recovered.name)
                with self._registry_lock:
                    self._sessions[recovered.name] = entry
                recovered_count += 1
            return recovered_count, dropped_count

        futures = [
            self._fanout.submit(replay_home, home, batch)
            for home, batch in by_home.items()
        ]
        for future in futures:
            recovered_count, dropped_count = future.result()  # WorkerDied propagates
            self._recovered_sessions += recovered_count
            self._dropped_sessions += dropped_count

    def _spawn(self, index: int, *, defer_handshake: bool = False) -> WorkerHandle:
        return WorkerHandle(
            index,
            self._config,
            request_timeout=self._request_timeout,
            defer_handshake=defer_handshake,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        alive = sum(1 for h in self._handles if h.alive())
        return (
            f"WorkerPool(workers={self._count}, alive={alive}, "
            f"restarts={self._restarts})"
        )
