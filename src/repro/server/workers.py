"""Multi-process shard workers behind the wire protocol.

The single-process wire front (:mod:`repro.server.wire`) tops out at one
GIL: every session's drain and shard refresh competes for the same
interpreter no matter how many threads the service owns.  The CRC32 site
placement of :mod:`repro.server.sharding` is *process-stable by design*,
and this module cashes that in: a **router** (:class:`WorkerPool`) owns N
**worker subprocesses**, each running a full
:class:`~repro.server.service.ValidationService`, and forwards every
``open/edit/report/check/close/drain`` to the worker that owns the
session —
placement is :func:`repro.server.sharding.session_home`, a stable hash of
the session name, so routing is stateless and survives router and worker
restarts alike.

**Transport.**  One duplex :mod:`multiprocessing` pipe per worker carrying
newline-free JSON frames: requests are ``{"verb", "payload"}`` envelopes
whose payloads are exactly the :mod:`repro.server.protocol` request
bodies, and responses are exactly the wire response bodies — each worker
simply runs the same :class:`repro.server.wire.LocalBackend` the
single-process server uses.  Workers are spawned (not forked): the router
runs threads, and forking a threaded process is undefined behaviour
waiting to happen.

**Failure model.**  A worker can die at any instant (crash, OOM-kill,
``kill -9``).  The router detects death on the next frame (EOF/broken
pipe/timeout), spawns a replacement in place, and **re-homes** the dead
worker's sessions by replaying each one's *journaled schema snapshot*: the
router records every session's open payload plus the edit payloads
acknowledged since, compacting the window into a schema-DSL snapshot
(:meth:`ValidationService.snapshot_schema`) every ``snapshot_after``
edits — the same snapshot-plus-replay-window shape as
:meth:`repro.patterns.incremental.IncrementalEngine.suspend`/``resume``,
one level up.  Replay is deterministic (schema mutators generate the same
labels from the same state), so a re-homed session's next report is
multiset-equal to an uninterrupted run — property-tested in
``tests/server/test_workers.py``.

**Exactly-once edits.**  An edit is journaled *after* the worker
acknowledges it, inside the same per-session critical section; an edit
in flight when the worker dies is therefore not in the journal, is not
replayed, and is retried exactly once against the replacement.  Re-homing
itself copies each journal under that session's lock, so an acknowledged
edit can never be missed by a concurrent replay.

**Handshake.**  Workers greet with their protocol version and verb set;
the router refuses a worker offering an incompatible protocol
(:data:`repro.server.protocol.WORKER_PROTOCOL_MISMATCH`), and a worker
receiving a verb it does not speak answers the typed ``unknown_verb``
error instead of a traceback — the regression net for future protocol
growth.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
from collections.abc import Callable
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Any

from repro.server import protocol
from repro.server.protocol import (
    INTERNAL_ERROR,
    MALFORMED_REQUEST,
    UNKNOWN_SESSION,
    UNKNOWN_VERB,
    WORKER_FAILED,
    WORKER_PROTOCOL_MISMATCH,
    Payload,
    WireError,
)
from repro.server.sharding import session_home

if TYPE_CHECKING:
    from multiprocessing.connection import Connection

    from repro.server.service import ValidationService
    from repro.server.wire import LocalBackend
    from repro.tool.validator import ValidatorSettings

#: Version of the router<->worker envelope protocol.  Bumped when a verb
#: changes shape; the router refuses workers greeting a different version.
#: v2 added the ``check`` verb (warm bounded satisfiability).  The contract
#: gate (``repro.devtools.contract``) blames this constant for any drift in
#: the worker verb tables against ``docs/protocol_spec.json``.
WORKER_PROTOCOL_VERSION = 2

#: Verbs every worker must speak for the router to accept it.
REQUIRED_WORKER_VERBS = frozenset(
    {
        "open",
        "edit",
        "report",
        "check",
        "close",
        "drain",
        "stats",
        "snapshot",
        "ping",
        "shutdown",
    }
)

#: Workers are spawned, never forked: the router process runs an event
#: loop plus executor threads, and fork() of a threaded process inherits
#: locks in unknown states.
_MP = multiprocessing.get_context("spawn")

#: Timeout multiplier for the verbs whose legitimate work scales with
#: session/schema size (drain ticks, opens shipping whole schemas, report
#: and close drains, schema snapshots, re-homing replays).  The base
#: ``request_timeout`` stays tight for constant-work frames (edit, ping,
#: stats) so hung workers are still detected quickly there.
SLOW_VERB_TIMEOUT_FACTOR = 4.0

#: How long one health probe waits for a busy worker's pipe before
#: reporting it ``busy`` with last-known stats: long enough to ride out a
#: normal drain tick, short enough that /healthz stays inside any
#: orchestrator probe timeout.
PROBE_WAIT = 1.0


def _worker_main(conn: Connection, config: dict[str, Any]) -> None:
    """Entry point of one worker subprocess: a ValidationService behind a
    serial JSON frame loop (the router serializes requests per worker, so
    the loop needs no concurrency of its own; the service's internal pools
    still parallelize drains across this worker's sessions)."""
    import signal

    from repro.server.service import ValidationService
    from repro.server.wire import LocalBackend

    # Router-led shutdown only: a Ctrl-C on the foreground process group
    # must not kill workers out from under the router's drain/replay.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    settings = None
    if config.get("settings") is not None:
        settings = protocol.settings_from_payload(config["settings"])
    service = ValidationService(settings=settings, **config.get("service", {}))
    backend = LocalBackend(service)
    conn.send_bytes(
        json.dumps(
            {
                "hello": True,
                "protocol_version": WORKER_PROTOCOL_VERSION,
                "verbs": sorted(REQUIRED_WORKER_VERBS),
                "pid": os.getpid(),
            }
        ).encode("utf-8")
    )
    while True:
        try:
            raw = conn.recv_bytes()
        except (EOFError, OSError):
            break  # router went away; die quietly
        try:
            request = json.loads(raw.decode("utf-8"))
            verb = request.get("verb")
            payload = request.get("payload") or {}
            if verb == "shutdown":
                conn.send_bytes(b'{"ok": true}')
                break
            response = _worker_dispatch(backend, service, verb, payload)
        except WireError as error:
            response = error.to_payload()
        except Exception as error:  # noqa: BLE001 - the pipe must stay structured
            response = WireError(
                INTERNAL_ERROR, f"{type(error).__name__}: {error}"
            ).to_payload()
        try:
            conn.send_bytes(json.dumps(response).encode("utf-8"))
        except (BrokenPipeError, OSError):
            break
    service.shutdown()


def _worker_dispatch(
    backend: LocalBackend, service: ValidationService, verb: str, payload: Payload
) -> Payload:
    """One worker verb; anything outside the negotiated set is the typed
    ``unknown_verb`` error, never a crash (protocol-growth regression net)."""
    if verb in ("open", "edit", "report", "check", "close", "drain"):
        return backend.handle(verb, payload)
    if verb == "ping":
        return {"ok": True, "pid": os.getpid()}
    if verb == "stats":
        return {"ok": True, **backend.health_payload()}
    if verb == "snapshot":
        name = payload.get("session")
        if not isinstance(name, str):
            raise WireError(MALFORMED_REQUEST, "snapshot needs a 'session' name")
        from repro.exceptions import UnknownElementError

        try:
            return {"ok": True, "session": name, "schema_dsl": service.snapshot_schema(name)}
        except UnknownElementError as error:
            raise WireError(UNKNOWN_SESSION, str(error)) from None
    raise WireError(
        UNKNOWN_VERB,
        f"worker speaks protocol v{WORKER_PROTOCOL_VERSION} and does not "
        f"understand verb {verb!r}",
    )


class WorkerDied(Exception):
    """Internal: the worker at the other end of a pipe is gone (EOF, broken
    pipe, or response timeout).  Callers revive the worker and retry."""


class WorkerHandle:
    """One live worker subprocess plus its pipe, serialized by a lock.

    The lock covers a full send/receive round trip: workers process frames
    serially, so per-worker serialization at the router loses nothing, and
    requests to *different* workers proceed in parallel — which is the
    whole point of the pool.
    """

    def __init__(
        self,
        index: int,
        config: dict[str, Any],
        *,
        request_timeout: float = 120.0,
        handshake_timeout: float = 60.0,
        expected_protocol: int | None = None,
        defer_handshake: bool = False,
    ) -> None:
        self.index = index
        self._timeout = request_timeout
        self._handshake_timeout = handshake_timeout
        self._expected_protocol = (
            expected_protocol if expected_protocol is not None else WORKER_PROTOCOL_VERSION
        )
        self._lock = threading.Lock()
        self.pid: int = -1
        #: Last stats body this worker answered (the health probe's
        #: fallback when the worker is busy mid-round-trip).
        self.last_stats: Payload | None = None
        parent_conn, child_conn = _MP.Pipe(duplex=True)
        self._conn = parent_conn
        self.process = _MP.Process(
            target=_worker_main,
            args=(child_conn, config),
            name=f"repro-worker-{index}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()  # our copy; the child keeps its own
        if not defer_handshake:
            self.handshake()

    def handshake(self) -> None:
        """Await and validate the worker's hello frame.

        Split from the spawn so a pool can start all N interpreters first
        and then collect the N hellos — startup stays ~one boot time
        instead of N serial boots.  Raises :class:`WorkerDied` (after
        reaping — no zombie from a failed spawn) or the typed
        ``worker_protocol_mismatch`` :class:`WireError`.
        """
        try:
            hello = self._recv(timeout=self._handshake_timeout)
        except WorkerDied:
            self.reap()
            raise
        offered = hello.get("protocol_version")
        missing = REQUIRED_WORKER_VERBS - set(hello.get("verbs") or ())
        if offered != self._expected_protocol or missing:
            self.reap()
            raise WireError(
                WORKER_PROTOCOL_MISMATCH,
                f"worker {self.index} greeted protocol v{offered} "
                f"(router expects v{self._expected_protocol})"
                + (f", missing verbs {sorted(missing)}" if missing else ""),
            )
        self.pid = hello.get("pid", self.process.pid)

    def _recv(self, *, timeout: float) -> Payload:
        try:
            if not self._conn.poll(timeout):
                raise WorkerDied(
                    f"worker {self.index} (pid {self.process.pid}) did not "
                    f"answer within {timeout:.0f}s"
                )
            raw = self._conn.recv_bytes()
            return json.loads(raw.decode("utf-8"))
        except WorkerDied:
            self.kill()
            raise
        except (EOFError, OSError, ValueError) as error:
            self.kill()
            raise WorkerDied(
                f"worker {self.index} (pid {self.process.pid}) is gone: {error}"
            ) from error

    def request(
        self, verb: str, payload: Payload | None = None, *, timeout: float | None = None
    ) -> Payload:
        """One round trip; raises :class:`WorkerDied` on any transport
        failure (the response, if any, is then unknowable — callers decide
        whether a retry is safe).  ``timeout`` overrides the handle default
        for verbs whose legitimate work is unbounded in session count
        (a drain tick, a giant open) — a *slow* worker must not be
        mistaken for a hung one and killed mid-work."""
        with self._lock:
            # repro-lint: disable=RL001 -- the pipe IS the critical section: one in-flight frame per worker is the transport invariant
            return self._exchange(verb, payload, timeout)

    def try_request(
        self,
        verb: str,
        payload: Payload | None = None,
        *,
        timeout: float | None = None,
        wait: float = 0.0,
    ) -> Payload | None:
        """:meth:`request` with a bounded wait for the pipe: returns
        ``None`` when another thread is still mid-round-trip after
        ``wait`` seconds (the worker is *busy*, which is itself an answer
        — it is alive and serving).  Used by the health probe so
        ``/healthz`` rides out a normal drain tick but never queues
        behind a pathologically long one."""
        if wait > 0:
            acquired = self._lock.acquire(timeout=wait)
        else:
            acquired = self._lock.acquire(blocking=False)
        if not acquired:
            return None
        try:
            return self._exchange(verb, payload, timeout)
        finally:
            self._lock.release()

    def _exchange(
        self, verb: str, payload: Payload | None, timeout: float | None
    ) -> Payload:
        """One frame out, one frame back.  Caller holds ``self._lock``."""
        frame = json.dumps({"verb": verb, "payload": payload or {}}).encode("utf-8")
        try:
            self._conn.send_bytes(frame)
        except (BrokenPipeError, OSError, ValueError) as error:
            self.kill()
            raise WorkerDied(
                f"worker {self.index} (pid {self.process.pid}) is gone: {error}"
            ) from error
        return self._recv(timeout=timeout if timeout is not None else self._timeout)

    def checked(
        self, verb: str, payload: Payload | None = None, *, timeout: float | None = None
    ) -> Payload:
        """:meth:`request`, re-raising a worker error body as WireError."""
        response = self.request(verb, payload, timeout=timeout)
        if not isinstance(response, dict) or "ok" not in response:
            raise WireError(
                INTERNAL_ERROR, f"worker {self.index} sent a malformed response"
            )
        if not response["ok"]:
            error = response.get("error") or {}
            raise WireError(
                # repro-lint: disable=RL008 -- forwarding the worker's already-typed code verbatim
                error.get("code", INTERNAL_ERROR),
                error.get("message", "worker error"),
            )
        return response

    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        """Hard-stop the subprocess and drop the pipe (idempotent)."""
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if self.process.is_alive():
            self.process.kill()

    def reap(self, timeout: float = 5.0) -> None:
        """Join the (dead or killed) subprocess so no zombie lingers."""
        self.kill()
        self.process.join(timeout=timeout)


class _RoutedSession:
    """The router's journal of one session: everything needed to re-home
    it into a fresh worker.  ``lock`` serializes this session's journal
    mutations with the worker round trips that justify them."""

    __slots__ = ("name", "lock", "opened", "open_payload", "edits")

    def __init__(self, name: str) -> None:
        self.name = name
        self.lock = threading.Lock()
        self.opened = False
        self.open_payload: Payload = {"session": name}
        self.edits: list[Payload] = []


class WorkerPool:
    """The router: N worker subprocesses behind the wire-verb surface.

    Implements the same backend interface as
    :class:`repro.server.wire.LocalBackend` (``handle`` /
    ``health_payload`` / ``tick`` / ``shutdown``), so
    :class:`repro.server.wire.WireServer` — and therefore every PR-4
    client — is indifferent to whether one process or N serve the
    session.  Construct via ``WireServer(workers=N, ...)`` or directly.

    Parameters
    ----------
    workers:
        Number of worker subprocesses (the shard count of the session
        space; fixed for the pool's lifetime so placement stays stable).
    settings:
        Default :class:`ValidatorSettings` profile (or its wire payload)
        for the workers' services.
    snapshot_after:
        Edits per session before the re-homing journal is compacted into
        a schema-DSL snapshot (bounding replay cost and router memory).
    request_timeout:
        Seconds a worker may take to answer one frame before it is
        declared dead and replaced.
    **service_kwargs:
        Forwarded to each worker's :class:`ValidationService`
        (``max_workers``, ``max_live_engines``, ``max_live_sites``,
        ``store_shards``).
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        settings: ValidatorSettings | Payload | None = None,
        snapshot_after: int = 64,
        request_timeout: float = 120.0,
        **service_kwargs: Any,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if snapshot_after < 1:
            raise ValueError(f"snapshot_after must be >= 1, got {snapshot_after}")
        settings_payload = None
        if settings is not None:
            settings_payload = (
                settings
                if isinstance(settings, dict)
                else protocol.settings_to_payload(settings)
            )
        self._config = {"settings": settings_payload, "service": dict(service_kwargs)}
        self._snapshot_after = snapshot_after
        self._request_timeout = request_timeout
        self._slow_timeout = request_timeout * SLOW_VERB_TIMEOUT_FACTOR
        self._count = workers
        handles: list[WorkerHandle] = []
        try:
            # Start all N interpreters first, then collect the N hellos:
            # pool startup costs ~one worker boot, not N serial ones.
            for index in range(workers):
                handles.append(self._spawn(index, defer_handshake=True))
            for handle in handles:
                handle.handshake()
        except WorkerDied as error:
            # A later spawn failing must not orphan the earlier workers
            # (they would sit in recv_bytes forever), nor leak the
            # internal WorkerDied type out of the public constructor.
            for handle in handles:
                handle.reap()
            raise WireError(
                WORKER_FAILED, f"worker pool failed to start: {error}"
            ) from error
        except WireError:  # protocol mismatch: already typed, still reap
            for handle in handles:
                handle.reap()
            raise
        self._handles = handles
        self._sessions: dict[str, _RoutedSession] = {}
        self._registry_lock = threading.Lock()
        self._revive_lock = threading.Lock()
        self._fanout = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-router"
        )
        # Health probes get their own small pool: the fan-out pool's N
        # threads can all be occupied by an in-flight drain tick, and a
        # liveness probe queueing behind a long drain is exactly what
        # /healthz must never do.
        self._probe_pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-probe"
        )
        self._restarts = 0
        self._rehomed_sessions = 0
        self._dropped_sessions = 0
        self._closing = False

    # -- the backend surface (what WireServer drives) ---------------------

    def handle(self, verb: str, payload: Payload) -> Payload:
        if verb == "open":
            return self._open(payload)
        if verb == "edit":
            return self._edit(payload)
        if verb == "report":
            return self._forward(
                self._home_of(payload), "report", payload, timeout=self._slow_timeout
            )
        if verb == "check":
            # A SAT sweep's legitimate work scales with schema and domain
            # size, like a report's drain — slow-verb budget.
            return self._forward(
                self._home_of(payload), "check", payload, timeout=self._slow_timeout
            )
        if verb == "close":
            return self._close(payload)
        if verb == "drain":
            return self._drain(payload)
        raise WireError(UNKNOWN_VERB, f"no such wire verb: {verb!r}")

    def health_payload(self) -> Payload:
        """Aggregate census: summed service stats plus the worker roster.

        Built to stay *probe-fast* whatever the workers are doing: all
        workers are probed in parallel on a dedicated probe pool (the
        fan-out pool may be fully occupied by a drain tick), each probe
        waits at most :data:`PROBE_WAIT` seconds for the worker's pipe —
        long enough to ride out a normal drain tick, bounded so a
        pathologically long one cannot stall liveness — and a worker
        still busy after that is reported ``busy`` with its last-known
        stats folded into the totals (alive and serving; its numbers are
        merely one probe stale).  Probing a *dead* worker answers
        immediately and kicks its revival (and re-homing) off in the
        background, so a periodic ``/healthz`` doubles as the crash
        detector even on an otherwise idle server without ever blocking
        on a replay.
        """
        probes = list(self._probe_pool.map(self._probe_stats, range(self._count)))
        totals: dict[str, int] = {}
        reachable = busy = 0
        for stats, state in probes:
            if state == "busy":
                busy += 1
            if state == "ok":
                reachable += 1
            if stats is None:
                continue
            for key, value in stats.items():
                if isinstance(value, (int, float)):
                    totals[key] = totals.get(key, 0) + value
        with self._registry_lock:
            routed = len(self._sessions)
        return {
            "stats": totals,
            "workers": {
                "count": self._count,
                "alive": sum(1 for h in self._handles if h.alive()),
                "reachable": reachable,
                "busy": busy,
                "pids": [h.pid for h in self._handles],
                "restarts": self._restarts,
                "rehomed_sessions": self._rehomed_sessions,
                "dropped_sessions": self._dropped_sessions,
                "routed_sessions": routed,
            },
        }

    def _probe_stats(self, index: int) -> tuple[Payload | None, str]:
        """One worker's census probe: ``(stats_or_None, state)``."""
        handle = self._handles[index]
        try:
            response = handle.try_request("stats", {}, wait=PROBE_WAIT)
        except WorkerDied:
            # Dead: kick the revival (and its re-homing replay) off in the
            # background and answer the probe *now* — a liveness probe
            # stalling for the whole replay would get the router restarted
            # by its orchestrator exactly mid-recovery.  Any direct
            # request racing this still revives synchronously via
            # :meth:`_forward`; the counters record whichever won.
            if self._closing:
                return None, "unreachable"
            try:
                future = self._fanout.submit(self._revive_quietly, index, handle)
            except RuntimeError:  # probe raced shutdown(): executor is gone
                return None, "unreachable"
            future.add_done_callback(lambda f: f.exception())  # consumed
            return None, "reviving"
        if response is None:
            return handle.last_stats, "busy"
        if isinstance(response, dict) and response.get("ok"):
            handle.last_stats = response.get("stats")
            return handle.last_stats, "ok"
        return None, "error"

    def _revive_quietly(self, index: int, dead: WorkerHandle) -> None:
        """Background revival for the health probe (failures are left for
        the next direct request to surface as typed errors)."""
        try:
            self._revive(index, dead)
        except WireError:
            pass

    def tick(self) -> None:
        """One background drain pass across every worker (in parallel)."""
        self._drain({})

    def shutdown(self) -> None:
        self._closing = True
        # Serialize with any in-flight revival: either it finished (its
        # replacement is in _handles and gets shut down below) or it has
        # not taken the revive lock yet (and will then see _closing and
        # refuse to spawn) — no replacement can be spawned-but-missed.
        with self._revive_lock:
            handles = list(self._handles)
        for handle in handles:
            try:
                handle.request("shutdown")
            except WorkerDied:
                pass
            handle.reap()
        self._fanout.shutdown(wait=False)
        self._probe_pool.shutdown(wait=False)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -- queries -----------------------------------------------------------

    @property
    def worker_count(self) -> int:
        return self._count

    def worker_pids(self) -> list[int]:
        """Current pid per worker index (changes when a worker is revived)."""
        return [handle.pid for handle in self._handles]

    def home_of(self, session_name: str) -> int:
        """The worker index that owns a session (stable in the name)."""
        return session_home(session_name, self._count)

    # -- verb routing ------------------------------------------------------

    def _home_of(self, payload: Payload) -> int:
        name = payload.get("session") if isinstance(payload, dict) else None
        if not isinstance(name, str):
            raise WireError(MALFORMED_REQUEST, "missing required field 'session'")
        return session_home(name, self._count)

    def _open(self, payload: Payload) -> Payload:
        index = self._home_of(payload)
        name = payload["session"]
        with self._registry_lock:
            entry = self._sessions.get(name)
            if entry is None:
                entry = _RoutedSession(name)
                self._sessions[name] = entry

        def record(_body: Payload) -> None:
            entry.opened = True
            entry.open_payload = payload
            entry.edits = []
            with self._registry_lock:
                self._sessions[name] = entry

        try:
            return self._forward(
                index, "open", payload,
                entry=entry, record=record, timeout=self._slow_timeout,
            )
        except WireError:
            with self._registry_lock:
                if not entry.opened and self._sessions.get(name) is entry:
                    del self._sessions[name]
            raise

    def _edit(self, payload: Payload) -> Payload:
        index = self._home_of(payload)
        name = payload["session"]
        with self._registry_lock:
            entry = self._sessions.get(name)
        if entry is None:
            # Never opened here: let the worker produce the typed 404.
            return self._forward(index, "edit", payload)

        def record(_body: Payload) -> None:
            entry.edits.append(payload)
            if len(entry.edits) >= self._snapshot_after:
                self._compact(index, entry)

        return self._forward(index, "edit", payload, entry=entry, record=record)

    def _close(self, payload: Payload) -> Payload:
        index = self._home_of(payload)
        name = payload["session"]
        with self._registry_lock:
            entry = self._sessions.get(name)
        if entry is None:
            return self._forward(index, "close", payload, timeout=self._slow_timeout)

        def record(_body: Payload) -> None:
            with self._registry_lock:
                if self._sessions.get(name) is entry:
                    del self._sessions[name]

        return self._forward(
            index, "close", payload,
            entry=entry, record=record, timeout=self._slow_timeout,
        )

    def _drain(self, payload: Payload) -> Payload:
        min_pending = payload.get("min_pending")
        sessions = payload.get("sessions")
        per_worker: dict[int, dict] = {}
        if sessions is None:
            for index in range(self._count):
                per_worker[index] = {}
        else:
            if not isinstance(sessions, list) or not all(
                isinstance(n, str) for n in sessions
            ):
                raise WireError(MALFORMED_REQUEST, "'sessions' must be a list of names")
            # Validate every name up front so an unknown one drains
            # *nothing* — the in-process service errors while building its
            # target list, and the two backends must not diverge on that.
            # (The worker still backstops the error for races with close.)
            with self._registry_lock:
                missing = [n for n in sessions if n not in self._sessions]
            if missing:
                raise WireError(UNKNOWN_SESSION, f"unknown session: '{missing[0]}'")
            for name in sessions:
                index = session_home(name, self._count)
                per_worker.setdefault(index, {"sessions": []})
                per_worker[index]["sessions"].append(name)
        if min_pending is not None:
            for sub in per_worker.values():
                sub["min_pending"] = min_pending
        futures = {
            index: self._fanout.submit(
                self._forward, index, "drain", sub, timeout=self._slow_timeout
            )
            for index, sub in per_worker.items()
        }
        # Zero-seeded so an empty tick (e.g. "sessions": []) returns the
        # same zeroed DrainStats shape as the in-process backend.
        totals: dict[str, int] = {
            "examined": 0, "drained": 0, "changes": 0, "resumed": 0, "rebuilt": 0
        }
        for future in futures.values():
            stats = future.result()["stats"]  # WireError propagates as-is
            for key, value in stats.items():
                totals[key] = totals.get(key, 0) + value
        return {"ok": True, "stats": totals}

    # -- forwarding, death detection, re-homing ----------------------------

    def _forward(
        self,
        index: int,
        verb: str,
        payload: Payload,
        *,
        entry: _RoutedSession | None = None,
        record: Callable[[Payload], None] | None = None,
        timeout: float | None = None,
    ) -> Payload:
        """One routed round trip with revive-and-retry.

        With ``entry``/``record``, the round trip and the journal update
        run inside the session's critical section (an acknowledged edit is
        journaled atomically with its acknowledgement), while the revive
        wait happens strictly *outside* it — revival takes every session
        lock to copy journals, so waiting for it while holding one would
        deadlock.
        """
        dead: WorkerHandle | None = None
        failure: WorkerDied | None = None
        for _attempt in range(2):
            if dead is not None:
                self._revive(index, dead)
            handle = self._handles[index]
            if entry is not None:
                with entry.lock:
                    try:
                        # repro-lint: disable=RL001 -- journal order must match worker order: the round trip completes under the session lock
                        response = handle.checked(verb, payload, timeout=timeout)
                    except WorkerDied as error:
                        dead, failure = handle, error
                        continue
                    # repro-lint: disable=RL001 -- journal append (and any compaction round trip) must be atomic with the response it records
                    record(response)
                    return response
            else:
                try:
                    response = handle.checked(verb, payload, timeout=timeout)
                except WorkerDied as error:
                    dead, failure = handle, error
                    continue
                return response
        raise WireError(
            WORKER_FAILED,
            f"worker {index} kept failing after revival "
            f"({verb!r} not answered: {failure})",
        )

    def _compact(self, index: int, entry: _RoutedSession) -> None:
        """Collapse a session's journal to a schema-DSL snapshot.

        Called under ``entry.lock`` from the edit path, so it must never
        wait on revival: a dead worker simply postpones compaction to a
        later edit (the journal stays replayable throughout)."""
        handle = self._handles[index]
        try:
            # Serializing a whole schema is O(schema size), same as an
            # open — slow-verb timeout, or a big session's routine
            # compaction would "time out" and kill a healthy worker.
            snapshot = handle.checked(
                "snapshot", {"session": entry.name}, timeout=self._slow_timeout
            )
        except (WorkerDied, WireError):
            return
        refreshed = dict(entry.open_payload)
        refreshed["schema_dsl"] = snapshot["schema_dsl"]
        entry.open_payload = refreshed
        entry.edits = []

    def _revive(self, index: int, dead: WorkerHandle) -> None:
        """Replace a dead worker and re-home its sessions by replay.

        Serialized on one lock: concurrent observers of the same death
        queue up here and find the worker already replaced (``is not
        dead``).  Each session's journal is copied and replayed under its
        own lock, taken one at a time — threads blocked on this revival
        never hold a session lock (see :meth:`_forward`), so the sweep
        cannot deadlock.
        """
        with self._revive_lock:
            if self._handles[index] is not dead:
                return  # somebody else already revived this worker
            if self._closing:
                raise WireError(WORKER_FAILED, "router is shutting down")
            # repro-lint: disable=RL001 -- revival is single-flight by design; reaping joins an already-dead process (bounded wait)
            dead.reap()
            try:
                fresh = self._spawn(index)
            except WorkerDied as error:
                # The replacement itself failed to come up (crash before
                # the hello frame, handshake timeout): keep the failure on
                # the documented worker_failed/503 contract — WorkerDied is
                # internal and must not leak as a 500.  The dead handle
                # stays installed; a later request retries the revival.
                raise WireError(
                    WORKER_FAILED,
                    f"could not spawn a replacement for worker {index}: {error}",
                ) from error
            with self._registry_lock:
                homed = [
                    entry
                    for entry in self._sessions.values()
                    if session_home(entry.name, self._count) == index
                ]
            rehomed = 0
            dropped: list[str] = []
            for entry in homed:
                with entry.lock:
                    if not entry.opened:
                        continue
                    try:
                        # repro-lint: disable=RL001 -- re-homing replays the journal under the session lock so no edit interleaves mid-replay
                        fresh.checked(
                            "open", entry.open_payload, timeout=self._slow_timeout
                        )
                        for edit in entry.edits:
                            # repro-lint: disable=RL001 -- same replay transaction as the open above
                            fresh.checked("edit", edit)
                        rehomed += 1
                    except WorkerDied as error:
                        # repro-lint: disable=RL001 -- the replacement just died; joining it is bounded and nothing else can hold this fresh handle yet
                        fresh.reap()
                        raise WireError(
                            WORKER_FAILED,
                            f"replacement worker {index} died during re-homing: "
                            f"{error}",
                        ) from error
                    except WireError:
                        # The journal no longer replays (should not happen:
                        # replay is deterministic) — drop the session rather
                        # than poison the whole worker, and close whatever
                        # prefix already applied so the fresh worker cannot
                        # keep serving a half-replayed schema under the
                        # dropped name.
                        dropped.append(entry.name)
                        try:
                            # repro-lint: disable=RL001 -- closing the half-replayed prefix is part of the same replay transaction
                            fresh.checked("close", {"session": entry.name})
                        except (WorkerDied, WireError):
                            pass
            if dropped:
                with self._registry_lock:
                    for name in dropped:
                        self._sessions.pop(name, None)
            self._handles[index] = fresh
            self._restarts += 1
            self._rehomed_sessions += rehomed
            self._dropped_sessions += len(dropped)

    def _spawn(self, index: int, *, defer_handshake: bool = False) -> WorkerHandle:
        return WorkerHandle(
            index,
            self._config,
            request_timeout=self._request_timeout,
            defer_handshake=defer_handshake,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        alive = sum(1 for h in self._handles if h.alive())
        return (
            f"WorkerPool(workers={self._count}, alive={alive}, "
            f"restarts={self._restarts})"
        )
