"""The JSON wire protocol of the validation service.

One request/response shape per :class:`~repro.server.service.ValidationService`
verb, shared by the asyncio HTTP front (:mod:`repro.server.wire`) and the
client (:mod:`repro.server.client`).  Everything on the wire is a JSON
object; successful responses carry ``{"ok": true, ...}``, failures carry
``{"ok": false, "error": {"code": ..., "message": ...}}`` with a matching
HTTP status — *structured* errors, never a traceback body.

Endpoints (see :class:`repro.server.wire.WireServer`):

=======================  ====================================================
``POST /v1/open``        ``{"session", "settings"?, "schema_dsl"?}``
``POST /v1/edit``        ``{"session", "verb", "args"?, "kwargs"?}``
``POST /v1/report``      ``{"session", "if_mark"?}``
``POST /v1/check``       ``{"session", "goal"?, "max_domain"?}`` — complete
                         (bounded) satisfiability, warm per session
``POST /v1/close``       ``{"session"}``
``POST /v1/drain``       ``{"sessions"?, "min_pending"?}`` — the service tick
``POST /v1/resize``      ``{"workers"}`` — grow/shrink the worker pool at
                         runtime (admin verb; multi-process backends only)
``GET  /healthz``        liveness + the service census
=======================  ====================================================

``/v1/report`` responses carry a ``mark`` — an opaque ETag over the
session's journal position.  A client polling an unchanged session echoes
it as ``if_mark`` and gets the 304-style short-circuit
``{"ok": true, "unchanged": true, "mark": ...}`` instead of a re-serialized
report (see :meth:`repro.server.service.ValidationService.report_marked`).

When the server was started with a shared token (``orm-validate serve
--token`` / ``ORM_VALIDATE_TOKEN``), every ``/v1/*`` request must carry
``Authorization: Bearer <token>``; failures are the structured
``unauthorized`` error (401).  ``GET /healthz`` stays unauthenticated so
orchestrator liveness probes keep working.

``settings`` serializes :class:`~repro.tool.validator.ValidatorSettings`
(:func:`settings_to_payload` / :func:`settings_from_payload`); reports
serialize :class:`~repro.tool.validator.ToolReport`
(:func:`report_to_payload` — the same shape the CLI's ``--format json``
prints).  ``schema_dsl`` is the ORM text DSL, letting a remote client ship
a whole schema in the open call instead of replaying it as edits.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any

from repro.exceptions import ReproError

# The report payload shape and its renderer are owned by the tool layer
# (one shape for --format json and the wire; one renderer for the local
# and the remote CLI) and re-exported here as part of the protocol surface.
from repro.tool.validator import (  # noqa: F401  (re-exports)
    ValidatorSettings,
    render_report_payload,
    report_to_payload,
)

#: A decoded JSON object, as every wire body is.
Payload = dict[str, Any]

#: A reasoning goal: one of the well-known strings, or ``(kind, name)`` /
#: ``("roles", (name, ...))`` targeting specific schema elements.
Goal = str | tuple[str, str] | tuple[str, tuple[str, ...]]

#: Protocol version, echoed by ``/healthz`` so clients can detect skew.
#: Version 2 (multi-process PR) is additive over 1: report ``mark``/
#: ``if_mark``, token auth, and the aggregated ``workers`` health section.
#: Version 3 is additive over 2: the ``/v1/check`` verb (complete bounded
#: satisfiability with a decoded witness population).
#: Version 4 is additive over 3: the ``/v1/resize`` admin verb (runtime
#: worker-pool grow/shrink with rendezvous-scoped live migration) and the
#: ``not_resizable`` / ``storage_error`` codes (single-process backends
#: cannot resize; a durable-log append that fails must refuse the edit
#: rather than acknowledge it).
#:
#: Bump this for any wire-visible change (request fields, response keys,
#: error codes, routing): the contract gate
#: (``python -m repro.devtools.contract src/``, in CI) diffs the extracted
#: protocol against ``docs/protocol_spec.json`` and fails on drift that is
#: not accompanied by a bump + baseline refresh.
WIRE_VERSION = 4

#: Upper bound accepted for ``/v1/resize``'s ``workers``: each worker is a
#: full interpreter process, so an unbounded resize request is a trivial
#: fork bomb.  64 is far beyond any deployment this service targets.
MAX_RESIZE_WORKERS = 64

#: Upper bound accepted for ``/v1/check``'s ``max_domain``: the encoding is
#: combinatorial in the domain size, so an unbounded request is a trivial
#: resource-exhaustion vector.  8 comfortably covers every bound the paper's
#: figures need (the largest is 6).
MAX_CHECK_DOMAIN = 8

# -- error codes (wire-visible) and their HTTP statuses -------------------

MALFORMED_REQUEST = "malformed_request"
UNKNOWN_ENDPOINT = "unknown_endpoint"
METHOD_NOT_ALLOWED = "method_not_allowed"
UNAUTHORIZED = "unauthorized"
UNKNOWN_SESSION = "unknown_session"
SESSION_EXISTS = "session_exists"
UNKNOWN_VERB = "unknown_verb"
#: ``/v1/check`` named a goal kind the reasoner does not know, or a goal
#: role/type that does not exist in the session's schema.
UNKNOWN_GOAL = "unknown_goal"
SCHEMA_ERROR = "schema_error"
SERVER_SHUTDOWN = "server_shutdown"
INTERNAL_ERROR = "internal_error"
#: A worker subprocess died and could not be revived in time to answer.
WORKER_FAILED = "worker_failed"
#: A worker offered an incompatible router<->worker protocol at handshake.
WORKER_PROTOCOL_MISMATCH = "worker_protocol_mismatch"
#: ``/v1/resize`` reached a backend with no worker pool to resize (the
#: single-process :class:`~repro.server.wire.LocalBackend`).
NOT_RESIZABLE = "not_resizable"
#: A durable-log append failed (disk full, I/O error) — the request was
#: refused *before* acknowledgement, so nothing unlogged was ever acked.
STORAGE_ERROR = "storage_error"

HTTP_STATUS = {
    MALFORMED_REQUEST: 400,
    UNKNOWN_VERB: 400,
    UNAUTHORIZED: 401,
    UNKNOWN_ENDPOINT: 404,
    UNKNOWN_SESSION: 404,
    METHOD_NOT_ALLOWED: 405,
    SESSION_EXISTS: 409,
    NOT_RESIZABLE: 409,
    UNKNOWN_GOAL: 422,
    SCHEMA_ERROR: 422,
    INTERNAL_ERROR: 500,
    WORKER_PROTOCOL_MISMATCH: 500,
    SERVER_SHUTDOWN: 503,
    WORKER_FAILED: 503,
    STORAGE_ERROR: 507,
}


class WireError(ReproError):
    """A structured protocol error (either side of the wire).

    Carries the wire-visible ``code`` and the HTTP status it maps to; the
    server turns it into the error response shape, the client raises it
    when a response carries one.
    """

    def __init__(self, code: str, message: str, http_status: int | None = None) -> None:
        super().__init__(message)
        self.code = code
        self.http_status = http_status or HTTP_STATUS.get(code, 500)

    def to_payload(self) -> Payload:
        """The ``{"ok": false, "error": ...}`` response body."""
        return {"ok": False, "error": {"code": self.code, "message": str(self)}}


def _require(
    payload: Payload, key: str, kind: type, *, optional: bool = False
) -> Any:
    """Typed field access over a decoded JSON body (wire-error on misuse)."""
    if not isinstance(payload, dict):
        raise WireError(MALFORMED_REQUEST, "request body must be a JSON object")
    value = payload.get(key)
    if value is None:
        if optional:
            return None
        raise WireError(MALFORMED_REQUEST, f"missing required field {key!r}")
    if not isinstance(value, kind):
        raise WireError(
            MALFORMED_REQUEST,
            f"field {key!r} must be {kind.__name__}, got {type(value).__name__}",
        )
    return value


# -- request shapes --------------------------------------------------------


@dataclass(frozen=True)
class OpenRequest:
    """``POST /v1/open`` — open a named session, optionally shipping a
    whole schema (ORM text DSL) and a settings profile."""

    session: str
    settings: Payload | None = None
    schema_dsl: str | None = None

    @classmethod
    def from_payload(cls, payload: Payload) -> "OpenRequest":
        return cls(
            session=_require(payload, "session", str),
            settings=_require(payload, "settings", dict, optional=True),
            schema_dsl=_require(payload, "schema_dsl", str, optional=True),
        )


@dataclass(frozen=True)
class EditRequest:
    """``POST /v1/edit`` — one session-verb edit (no validation; the
    batched-drain contract is unchanged over the wire)."""

    session: str
    verb: str
    args: list[Any] = field(default_factory=list)
    kwargs: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_payload(cls, payload: Payload) -> "EditRequest":
        return cls(
            session=_require(payload, "session", str),
            verb=_require(payload, "verb", str),
            args=_require(payload, "args", list, optional=True) or [],
            kwargs=_require(payload, "kwargs", dict, optional=True) or {},
        )


@dataclass(frozen=True)
class SessionRequest:
    """``POST /v1/close`` — one session by name."""

    session: str

    @classmethod
    def from_payload(cls, payload: Payload) -> "SessionRequest":
        return cls(session=_require(payload, "session", str))


@dataclass(frozen=True)
class ReportRequest:
    """``POST /v1/report`` — drain one session and return its report.

    ``if_mark`` is the ETag short-circuit: echo the ``mark`` of the
    previous report response and the server answers
    ``{"ok": true, "unchanged": true, "mark": ...}`` when nothing was
    edited since, skipping the report serialization entirely.
    """

    session: str
    if_mark: str | None = None

    @classmethod
    def from_payload(cls, payload: Payload) -> "ReportRequest":
        return cls(
            session=_require(payload, "session", str),
            if_mark=_require(payload, "if_mark", str, optional=True),
        )


def goal_from_payload(value: object) -> Goal:
    """Decode the wire form of a reasoning goal.

    A goal is either one of the strings ``"strong"`` / ``"concept"`` /
    ``"weak"`` / ``"global"``, or an object ``{"kind": "role"|"type",
    "name": ...}`` / ``{"kind": "roles", "names": [...]}`` targeting
    specific elements.  Shape errors are ``malformed_request``; whether the
    named kind/element exists is decided by the reasoner (``unknown_goal``).
    """
    if isinstance(value, str):
        return value
    if isinstance(value, dict):
        kind = _require(value, "kind", str)
        if kind == "roles":
            names = _require(value, "names", list)
            if not all(isinstance(name, str) for name in names):
                raise WireError(MALFORMED_REQUEST, "'names' must be a list of strings")
            return (kind, tuple(names))
        name = _require(value, "name", str)
        return (kind, name)
    raise WireError(MALFORMED_REQUEST, "'goal' must be a string or an object")


def goal_to_payload(goal: Goal) -> str | Payload:
    """The wire form of a goal (inverse of :func:`goal_from_payload`)."""
    if isinstance(goal, tuple):
        kind, name = goal
        if kind == "roles":
            return {"kind": kind, "names": list(name)}
        return {"kind": kind, "name": name}
    return goal


@dataclass(frozen=True)
class CheckRequest:
    """``POST /v1/check`` — complete bounded satisfiability of a session.

    ``goal`` defaults to strong (role) satisfiability; ``max_domain`` to 4
    abstract individuals, capped at :data:`MAX_CHECK_DOMAIN`.
    """

    session: str
    goal: Goal = "strong"
    max_domain: int = 4

    @classmethod
    def from_payload(cls, payload: Payload) -> "CheckRequest":
        session = _require(payload, "session", str)
        raw_goal = payload.get("goal")
        goal = goal_from_payload(raw_goal) if raw_goal is not None else "strong"
        max_domain = _require(payload, "max_domain", int, optional=True)
        if max_domain is None:
            max_domain = 4
        if isinstance(max_domain, bool) or not 0 <= max_domain <= MAX_CHECK_DOMAIN:
            raise WireError(
                MALFORMED_REQUEST,
                f"'max_domain' must be an integer in 0..{MAX_CHECK_DOMAIN}",
            )
        return cls(session=session, goal=goal, max_domain=max_domain)


@dataclass(frozen=True)
class DrainRequest:
    """``POST /v1/drain`` — one service tick over all (or named) sessions."""

    sessions: list[str] | None = None
    min_pending: int = 1

    @classmethod
    def from_payload(cls, payload: Payload) -> "DrainRequest":
        sessions = _require(payload, "sessions", list, optional=True)
        if sessions is not None and not all(isinstance(n, str) for n in sessions):
            raise WireError(MALFORMED_REQUEST, "'sessions' must be a list of names")
        min_pending = _require(payload, "min_pending", int, optional=True)
        return cls(sessions=sessions, min_pending=min_pending or 1)


@dataclass(frozen=True)
class ResizeRequest:
    """``POST /v1/resize`` — grow or shrink the worker pool at runtime.

    An admin verb: the router spawns/retires workers and live-migrates
    only the sessions whose rendezvous owner changed (see
    :func:`repro.server.sharding.rendezvous_owner`).  Single-process
    backends answer ``not_resizable``.
    """

    workers: int

    @classmethod
    def from_payload(cls, payload: Payload) -> "ResizeRequest":
        workers = _require(payload, "workers", int)
        if isinstance(workers, bool) or not 1 <= workers <= MAX_RESIZE_WORKERS:
            raise WireError(
                MALFORMED_REQUEST,
                f"'workers' must be an integer in 1..{MAX_RESIZE_WORKERS}",
            )
        return cls(workers=workers)


# -- payload (de)serialization ---------------------------------------------


def settings_to_payload(settings: ValidatorSettings) -> Payload:
    """Serialize a Fig. 15 settings profile for the wire."""
    return {
        "patterns": dict(settings.patterns),
        "wellformedness": settings.wellformedness,
        "formation_rules": settings.formation_rules,
        "propagation": settings.propagation,
    }


_SETTINGS_FLAGS = ("wellformedness", "formation_rules", "propagation")


def settings_from_payload(payload: Payload) -> ValidatorSettings:
    """Build a :class:`ValidatorSettings` from its wire form.

    ``patterns`` may be a dict ``{pattern_id: bool}`` or a list of enabled
    ids (everything else unticked); unknown pattern ids or flags are
    malformed requests, not silent no-ops.
    """
    settings = ValidatorSettings()
    unknown = set(payload) - {"patterns", *_SETTINGS_FLAGS}
    if unknown:
        raise WireError(
            MALFORMED_REQUEST, f"unknown settings field(s): {sorted(unknown)}"
        )
    patterns = payload.get("patterns")
    if patterns is not None:
        if isinstance(patterns, list):
            patterns = {pid: True for pid in patterns}
            wanted = dict.fromkeys(settings.patterns, False)
            wanted.update(patterns)
        elif isinstance(patterns, dict):
            wanted = dict(settings.patterns)
            wanted.update(patterns)
        else:
            raise WireError(MALFORMED_REQUEST, "'patterns' must be a list or object")
        try:
            for pattern_id, enabled in wanted.items():
                if enabled:
                    settings.enable(pattern_id)
                else:
                    settings.disable(pattern_id)
        except KeyError as error:
            raise WireError(MALFORMED_REQUEST, f"unknown pattern id {error}") from None
    for flag in _SETTINGS_FLAGS:
        if flag in payload:
            value = payload[flag]
            if not isinstance(value, bool):
                raise WireError(MALFORMED_REQUEST, f"settings field {flag!r} must be a bool")
            setattr(settings, flag, value)
    return settings


def edit_result_to_payload(result: object) -> Payload:
    """Serialize whatever a Schema mutator returned (the created/removed
    element) down to what a remote editor needs: its name or label."""
    payload: Payload = {"kind": type(result).__name__}
    label = getattr(result, "label", None)
    if isinstance(label, str):
        payload["label"] = label
    name = getattr(result, "name", None)
    if isinstance(name, str):
        payload["name"] = name
    if not ("label" in payload or "name" in payload):
        payload["repr"] = repr(result)
    return payload


def stats_to_payload(stats: Any) -> Payload:
    """Serialize a :class:`DrainStats` / :class:`ServiceStats` dataclass."""
    return asdict(stats)


def witness_to_payload(witness: Any) -> Payload:
    """Serialize a witness :class:`~repro.population.population.Population`.

    Only populated types/facts appear; instances and tuples are sorted so
    the payload is deterministic (the conformance tests compare it across
    backends byte-for-byte).
    """
    types = {
        type_name: sorted(witness.instances_of(type_name))
        for type_name in sorted(witness.populated_types())
    }
    facts: dict[str, list[list[str]]] = {}
    for fact in witness.schema.fact_types():
        tuples = witness.tuples_of(fact.name)
        if tuples:
            facts[fact.name] = sorted(list(pair) for pair in tuples)
    return {"types": types, "facts": facts}


def verdict_to_payload(verdict: Any) -> Payload:
    """Serialize a reasoner :class:`~repro.reasoner.modelfinder.Verdict`.

    ``status`` is ``"sat"`` (with a ``witness``), ``"unsat"`` (no model
    within the bound) or ``"unknown"`` (the solver's decision budget ran
    out on the listed ``inconclusive_sizes`` with no SAT answer — neither
    satisfiability nor bounded unsatisfiability is established).
    """
    payload = {
        "status": verdict.status,
        "goal": goal_to_payload(verdict.goal),
        "domain_size": verdict.domain_size,
        "sizes_tried": list(verdict.sizes_tried),
        "inconclusive_sizes": list(verdict.inconclusive_sizes),
        "decisions": verdict.decisions,
        "conflicts": verdict.conflicts,
        "restarts": verdict.restarts,
        "learned_clauses": verdict.learned_clauses,
        "kept_clauses": verdict.kept_clauses,
        "clauses": verdict.clauses,
        "variables": verdict.variables,
        "elapsed_seconds": verdict.elapsed_seconds,
    }
    if verdict.witness is not None:
        payload["witness"] = witness_to_payload(verdict.witness)
    return payload
