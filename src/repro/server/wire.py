"""Asyncio HTTP front end over the :class:`ValidationService` verbs.

The paper's Sec. 4 story is many concurrent modelers getting feedback as
they edit; :class:`~repro.server.service.ValidationService` is that loop
in-process, and :class:`WireServer` makes it literal — remote modelers
speak a small JSON protocol (:mod:`repro.server.protocol`) over HTTP/1.1
(keep-alive, stdlib only, no framework dependency):

* ``POST /v1/open|edit|report|close`` — the four service verbs;
* ``POST /v1/drain`` — the service tick, also run periodically by the
  server's own background drain task (``drain_interval``);
* ``GET /healthz`` — liveness plus the service census.

**Threading model.**  The service API was shaped so this layer needs no
new locking: every request handler is a plain blocking call into the
service (per-session locks serialize edits with drains), bridged off the
event loop with :meth:`loop.run_in_executor`.  The event loop itself only
parses HTTP and JSON; the background drain task ticks the service's own
thread pool, so a slow drain never blocks request handling.

**Failure shape.**  Every error a client can provoke — malformed JSON,
unknown session, edit after close, a request racing server shutdown — is
returned as a structured ``{"ok": false, "error": {...}}`` body with a
matching HTTP status (:data:`repro.server.protocol.HTTP_STATUS`); the
server never answers with a traceback body and never leaves a request
hanging.
"""

from __future__ import annotations

import asyncio
import json
import threading

from repro.exceptions import ReproError, UnknownElementError
from repro.io.dsl import parse_schema
from repro.server import protocol
from repro.server.protocol import (
    INTERNAL_ERROR,
    MALFORMED_REQUEST,
    METHOD_NOT_ALLOWED,
    SCHEMA_ERROR,
    SERVER_SHUTDOWN,
    SESSION_EXISTS,
    UNKNOWN_ENDPOINT,
    UNKNOWN_SESSION,
    UNKNOWN_VERB,
    WIRE_VERSION,
    DrainRequest,
    EditRequest,
    OpenRequest,
    SessionRequest,
    WireError,
)
from repro.server.service import ValidationService

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Largest accepted request body (a schema DSL ships in one open call).
MAX_BODY_BYTES = 4 * 1024 * 1024


class WireServer:
    """The asyncio HTTP front over one :class:`ValidationService`.

    Parameters
    ----------
    service:
        An existing service to expose; ``None`` builds one from
        ``service_kwargs`` and owns it (shut down with the server).
    host / port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`address` after :meth:`start`).
    drain_interval:
        Period (seconds) of the background service tick; ``None`` disables
        it (drains then happen only via ``/v1/drain`` and ``report``).
    """

    def __init__(
        self,
        service: ValidationService | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        drain_interval: float | None = 0.05,
        **service_kwargs,
    ) -> None:
        self._service = service if service is not None else ValidationService(**service_kwargs)
        self._owns_service = service is None
        self._host = host
        self._port = port
        self._drain_interval = drain_interval
        self._server: asyncio.AbstractServer | None = None
        self._drain_task: asyncio.Task | None = None
        self._connections: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._closing = False

    @property
    def service(self) -> ValidationService:
        """The service this front exposes."""
        return self._service

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    @property
    def base_url(self) -> str:
        """``http://host:port`` of the running server."""
        host, port = self.address
        return f"http://{host}:{port}"

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind, start serving and start the background drain task."""
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        if self._drain_interval is not None:
            self._drain_task = asyncio.create_task(self._drain_loop())
        return self.address

    async def serve_forever(self) -> None:
        """Serve until cancelled (the ``orm-validate serve`` loop)."""
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    def begin_shutdown(self) -> None:
        """Enter lame-duck mode: every request from now on gets a
        structured ``server_shutdown`` error instead of service access.

        Safe to call from any thread; :meth:`stop` calls it first, so a
        request racing shutdown mid-drain sees a clean 503, not a hang or
        a half-written response.
        """
        self._closing = True

    async def stop(self) -> None:
        """Stop accepting, finish in-flight requests, stop the service."""
        self.begin_shutdown()
        if self._drain_task is not None:
            self._drain_task.cancel()
            try:
                await self._drain_task
            except asyncio.CancelledError:
                pass
            self._drain_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Closing the listener does not touch established connections: idle
        # keep-alive clients sit blocked in readline forever.  Close their
        # transports so every connection task unwinds promptly (in-flight
        # handlers were already answered or see the lame-duck 503).
        for writer in list(self._writers):
            writer.close()
        if self._connections:
            _, pending = await asyncio.wait(self._connections, timeout=5.0)
            for task in pending:
                task.cancel()
        if self._owns_service:
            await asyncio.get_running_loop().run_in_executor(
                None, self._service.shutdown
            )

    async def _drain_loop(self) -> None:
        """The background service tick (errors are survivable: a failing
        drain is retried next period; the verbs keep working regardless)."""
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self._drain_interval)
            try:
                await loop.run_in_executor(None, self._service.drain)
            except asyncio.CancelledError:  # pragma: no cover - task teardown
                raise
            except Exception:  # pragma: no cover - keep ticking
                continue

    # -- HTTP plumbing -----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        self._writers.add(writer)
        try:
            while True:
                keep_alive = await self._handle_one_request(reader, writer)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass  # client went away; nothing to answer
        except (asyncio.LimitOverrunError, ValueError):
            # A request line or header beyond the StreamReader limit: still
            # answer structurally before dropping the connection.
            try:
                await self._respond(
                    writer,
                    400,
                    WireError(
                        MALFORMED_REQUEST, "request line or headers too large"
                    ).to_payload(),
                    keep_alive=False,
                )
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _handle_one_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Parse one HTTP/1.1 request, dispatch, respond.  Returns whether
        the connection should be kept alive for another request."""
        request_line = await reader.readline()
        if not request_line or request_line in (b"\r\n", b"\n"):
            return False
        try:
            method, path, _version = request_line.decode("latin-1").split(None, 2)
        except ValueError:
            await self._respond(
                writer,
                400,
                WireError(MALFORMED_REQUEST, "unparseable request line").to_payload(),
                keep_alive=False,
            )
            return False
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        keep_alive = headers.get("connection", "keep-alive").lower() != "close"
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            await self._respond(
                writer,
                400,
                WireError(MALFORMED_REQUEST, "bad content-length").to_payload(),
                keep_alive=False,
            )
            return False
        body = await reader.readexactly(length) if length else b""
        status, payload = await self._dispatch(method.upper(), path, body)
        await self._respond(writer, status, payload, keep_alive=keep_alive)
        return keep_alive

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        *,
        keep_alive: bool,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- dispatch ----------------------------------------------------------

    async def _dispatch(self, method: str, path: str, body: bytes) -> tuple[int, dict]:
        """Route one request; *every* failure becomes a structured error."""
        try:
            if path == "/healthz":
                if method != "GET":
                    raise WireError(METHOD_NOT_ALLOWED, "/healthz is GET-only")
                return 200, self._healthz()
            handler = {
                "/v1/open": self._handle_open,
                "/v1/edit": self._handle_edit,
                "/v1/report": self._handle_report,
                "/v1/close": self._handle_close,
                "/v1/drain": self._handle_drain,
            }.get(path)
            if handler is None:
                raise WireError(UNKNOWN_ENDPOINT, f"no such endpoint: {path}")
            if method != "POST":
                raise WireError(METHOD_NOT_ALLOWED, f"{path} is POST-only")
            if self._closing:
                raise WireError(SERVER_SHUTDOWN, "server is shutting down")
            try:
                payload = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise WireError(
                    MALFORMED_REQUEST, f"request body is not valid JSON: {error}"
                ) from None
            result = await asyncio.get_running_loop().run_in_executor(
                None, handler, payload
            )
            return 200, result
        except WireError as error:
            return error.http_status, error.to_payload()
        except RuntimeError as error:
            # The executor (or a service pool) refusing new work is the
            # shutdown race; any other RuntimeError is a genuine bug.
            if self._closing or "shutdown" in str(error):
                error = WireError(SERVER_SHUTDOWN, f"server is shutting down: {error}")
            else:
                error = WireError(INTERNAL_ERROR, f"RuntimeError: {error}")
            return error.http_status, error.to_payload()
        except Exception as error:  # noqa: BLE001 - the wire must stay structured
            error = WireError(INTERNAL_ERROR, f"{type(error).__name__}: {error}")
            return error.http_status, error.to_payload()

    # -- verb handlers (blocking; run on the executor) ---------------------

    def _healthz(self) -> dict:
        stats = self._service.stats()
        return {
            "ok": True,
            "status": "shutting_down" if self._closing else "serving",
            "wire_version": WIRE_VERSION,
            "stats": protocol.stats_to_payload(stats),
        }

    def _handle_open(self, payload: dict) -> dict:
        request = OpenRequest.from_payload(payload)
        settings = None
        if request.settings is not None:
            settings = protocol.settings_from_payload(request.settings)
        schema = None
        if request.schema_dsl is not None:
            try:
                schema = parse_schema(request.schema_dsl)
            except ReproError as error:
                raise WireError(SCHEMA_ERROR, f"schema_dsl: {error}") from None
        try:
            handle = self._service.open(request.session, settings=settings, schema=schema)
        except ValueError as error:
            raise WireError(SESSION_EXISTS, str(error)) from None
        return {
            "ok": True,
            "session": handle.name,
            "pending": handle.pending_changes,
        }

    def _handle_edit(self, payload: dict) -> dict:
        request = EditRequest.from_payload(payload)
        args = [tuple(a) if isinstance(a, list) else a for a in request.args]
        kwargs = {
            key: tuple(v) if isinstance(v, list) else v
            for key, v in request.kwargs.items()
        }
        try:
            result = self._service.edit(request.session, request.verb, *args, **kwargs)
        except UnknownElementError as error:
            raise _session_or_verb_error(error) from None
        except (TypeError, ReproError) as error:
            # Bad arguments or a schema-level rejection: the edit did not apply.
            raise WireError(SCHEMA_ERROR, str(error)) from None
        return {"ok": True, "result": protocol.edit_result_to_payload(result)}

    def _handle_report(self, payload: dict) -> dict:
        request = SessionRequest.from_payload(payload)
        try:
            report = self._service.report(request.session)
        except UnknownElementError as error:
            raise _session_or_verb_error(error) from None
        return {"ok": True, "report": protocol.report_to_payload(report)}

    def _handle_close(self, payload: dict) -> dict:
        request = SessionRequest.from_payload(payload)
        try:
            report = self._service.close(request.session)
        except UnknownElementError as error:
            raise _session_or_verb_error(error) from None
        return {"ok": True, "report": protocol.report_to_payload(report)}

    def _handle_drain(self, payload: dict) -> dict:
        request = DrainRequest.from_payload(payload)
        try:
            stats = self._service.drain(
                request.sessions, min_pending=request.min_pending
            )
        except KeyError as error:
            raise WireError(UNKNOWN_SESSION, f"unknown session: {error}") from None
        return {"ok": True, "stats": protocol.stats_to_payload(stats)}


def _session_or_verb_error(error: UnknownElementError) -> WireError:
    """Map the service's UnknownElementError onto the wire code space: an
    unknown *session* (including edit-after-close) is 404, an unknown edit
    verb the client's 400; any other unknown element (a role, a type — the
    schema rejected the edit's arguments) is the 422 schema error."""
    if error.kind == "session":
        return WireError(UNKNOWN_SESSION, str(error))
    if error.kind == "edit verb":
        return WireError(UNKNOWN_VERB, str(error))
    return WireError(SCHEMA_ERROR, str(error))


class ServerThread:
    """Run a :class:`WireServer` on a dedicated event-loop thread.

    The synchronous-world adapter used by the tests, the benchmark and any
    embedding that is not already inside asyncio::

        with ServerThread(max_workers=4) as server:
            client = ServiceClient(server.base_url)
            ...

    ``stop()`` (or leaving the context) shuts the loop and, when the
    server owns its service, the service too.
    """

    def __init__(self, service: ValidationService | None = None, **server_kwargs) -> None:
        self._server = WireServer(service, **server_kwargs)
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started = threading.Event()
        self._stop_event: asyncio.Event | None = None
        self._startup_error: BaseException | None = None

    @property
    def server(self) -> WireServer:
        return self._server

    @property
    def address(self) -> tuple[str, int]:
        return self._server.address

    @property
    def base_url(self) -> str:
        return self._server.base_url

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-wire-server", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=10.0)
        if self._startup_error is not None:
            raise RuntimeError("wire server failed to start") from self._startup_error
        if not self._started.is_set():
            raise RuntimeError("wire server did not start within 10s")
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            await self._server.start()
        except BaseException as error:  # pragma: no cover - bind failure path
            self._startup_error = error
            self._started.set()
            return
        self._started.set()
        await self._stop_event.wait()
        await self._server.stop()

    def begin_shutdown(self) -> None:
        """Thread-safe lame-duck switch (see :meth:`WireServer.begin_shutdown`)."""
        self._server.begin_shutdown()

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=15.0)
            self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
