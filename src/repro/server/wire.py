"""Asyncio HTTP front end over the :class:`ValidationService` verbs.

The paper's Sec. 4 story is many concurrent modelers getting feedback as
they edit; :class:`~repro.server.service.ValidationService` is that loop
in-process, and :class:`WireServer` makes it literal — remote modelers
speak a small JSON protocol (:mod:`repro.server.protocol`) over HTTP/1.1
(keep-alive, stdlib only, no framework dependency):

* ``POST /v1/open|edit|report|close`` — the four service verbs;
* ``POST /v1/check`` — warm complete (bounded) satisfiability of one
  session's schema, with a decoded witness population on ``"sat"``.
  Verdicts are ``"sat"``/``"unsat"`` *within the swept bound*, or
  ``"unknown"`` when the solver's decision budget ran out at some size
  without a later size answering SAT (``inconclusive_sizes`` lists the
  unresolved ones — a budget statement, not a schema property);
* ``POST /v1/drain`` — the service tick, also run periodically by the
  server's own background drain task (``drain_interval``);
* ``POST /v1/resize`` — grow/shrink the worker pool at runtime with
  rendezvous-scoped live migration (multi-process deployments only; the
  in-process backend answers the typed ``not_resizable``);
* ``GET /healthz`` — liveness plus the service census.

**Backends.**  The HTTP layer does not touch the service directly; it
drives a *backend* — payload-dict in, response-dict out, one method per
wire verb:

* :class:`LocalBackend` executes the verbs against an in-process
  :class:`ValidationService` (the default, and what every worker
  subprocess runs internally);
* :class:`repro.server.workers.WorkerPool` (``workers=N``) routes each
  session to one of N worker **processes** by stable session-name hash
  and forwards the same payloads over a pipe transport — the sharded
  scale-out past the single-process GIL.

**Threading model.**  The service API was shaped so this layer needs no
new locking: every request handler is a plain blocking call into the
backend (per-session locks serialize edits with drains), bridged off the
event loop with :meth:`loop.run_in_executor`.  The event loop itself only
parses HTTP and JSON; the background drain task ticks the backend's own
thread pool (or worker processes), so a slow drain never blocks request
handling.

**Auth.**  With ``token`` set, every ``/v1/*`` request must carry
``Authorization: Bearer <token>`` (compared constant-time); failures get
the structured ``unauthorized`` 401.  ``GET /healthz`` stays open for
liveness probes.  The CLI refuses to bind beyond loopback without a token
(see ``orm-validate serve --token`` / ``ORM_VALIDATE_TOKEN``).

**Failure shape.**  Every error a client can provoke — malformed JSON,
unknown session, edit after close, a request racing server shutdown, a
killed worker process — is returned as a structured
``{"ok": false, "error": {...}}`` body with a matching HTTP status
(:data:`repro.server.protocol.HTTP_STATUS`); the server never answers
with a traceback body and never leaves a request hanging.
"""

from __future__ import annotations

import asyncio
import hmac
import json
import threading
from typing import Any, Protocol

from repro.exceptions import ReproError, UnknownElementError
from repro.io.dsl import parse_schema
from repro.server import protocol
from repro.server.protocol import (
    INTERNAL_ERROR,
    MALFORMED_REQUEST,
    METHOD_NOT_ALLOWED,
    NOT_RESIZABLE,
    SCHEMA_ERROR,
    SERVER_SHUTDOWN,
    SESSION_EXISTS,
    UNAUTHORIZED,
    UNKNOWN_ENDPOINT,
    UNKNOWN_GOAL,
    UNKNOWN_SESSION,
    UNKNOWN_VERB,
    WIRE_VERSION,
    CheckRequest,
    DrainRequest,
    EditRequest,
    OpenRequest,
    ReportRequest,
    Payload,
    ResizeRequest,
    SessionRequest,
    WireError,
)
from repro.server.service import ValidationService

_REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Largest accepted request body (a schema DSL ships in one open call).
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Largest unauthorized request body still drained before answering 401
#: (so the response survives instead of being RST away with the unread
#: data); beyond it the connection is simply closed.
AUTH_REJECT_DRAIN_BYTES = 64 * 1024

#: The wire verbs, in the order the endpoints document them.  Adding one
#: means touching every table the contract gate holds in parity: the
#: LocalBackend dispatch below, the worker pipe tables in ``workers.py``,
#: and the ``WIRE_VERSION`` baseline (see ``repro.devtools.contract``).
WIRE_VERBS = ("open", "edit", "report", "check", "close", "drain", "resize")


class Backend(Protocol):
    """What :class:`WireServer` needs from a backend: payload-dict in,
    response-dict out, one call per wire verb, plus the census and
    lifecycle hooks.  :class:`LocalBackend` and
    :class:`repro.server.workers.WorkerPool` both satisfy it structurally.
    """

    def handle(self, verb: str, payload: Payload) -> Payload: ...

    def health_payload(self) -> Payload: ...

    def tick(self) -> None: ...

    def shutdown(self) -> None: ...


class LocalBackend:
    """In-process execution of the wire verbs over one ValidationService.

    The surface is deliberately *payload-shaped*: :meth:`handle` takes the
    decoded JSON request body of one verb and returns the JSON response
    body, raising :class:`WireError` for every structured failure.  That
    is what lets one implementation serve two deployments — the
    single-process :class:`WireServer` calls it directly on its executor,
    and every :mod:`repro.server.workers` worker subprocess runs one over
    its own service, the router forwarding the identical payloads over a
    pipe.
    """

    def __init__(self, service: ValidationService) -> None:
        self._service = service

    @property
    def service(self) -> ValidationService:
        """The service this backend executes against."""
        return self._service

    # -- the backend surface WireServer drives ---------------------------

    def handle(self, verb: str, payload: Payload) -> Payload:
        """Execute one wire verb; structured failures raise WireError."""
        handler = {
            "open": self._open,
            "edit": self._edit,
            "report": self._report,
            "check": self._check,
            "close": self._close,
            "drain": self._drain,
            "resize": self._resize,
        }.get(verb)
        if handler is None:
            raise WireError(UNKNOWN_VERB, f"no such wire verb: {verb!r}")
        return handler(payload)

    def health_payload(self) -> Payload:
        """The backend part of the ``/healthz`` body (the service census)."""
        return {"stats": protocol.stats_to_payload(self._service.stats())}

    def tick(self) -> None:
        """One background drain pass (the periodic service tick)."""
        self._service.drain()

    def shutdown(self) -> None:
        self._service.shutdown()

    # -- verb handlers (blocking) -----------------------------------------

    def _open(self, payload: Payload) -> Payload:
        request = OpenRequest.from_payload(payload)
        settings = None
        if request.settings is not None:
            settings = protocol.settings_from_payload(request.settings)
        schema = None
        if request.schema_dsl is not None:
            try:
                schema = parse_schema(request.schema_dsl)
            except ReproError as error:
                raise WireError(SCHEMA_ERROR, f"schema_dsl: {error}") from None
        try:
            handle = self._service.open(request.session, settings=settings, schema=schema)
        except ValueError as error:
            raise WireError(SESSION_EXISTS, str(error)) from None
        return {
            "ok": True,
            "session": handle.name,
            "pending": handle.pending_changes,
        }

    def _edit(self, payload: Payload) -> Payload:
        request = EditRequest.from_payload(payload)
        args = [tuple(a) if isinstance(a, list) else a for a in request.args]
        kwargs = {
            key: tuple(v) if isinstance(v, list) else v
            for key, v in request.kwargs.items()
        }
        try:
            result = self._service.edit(request.session, request.verb, *args, **kwargs)
        except UnknownElementError as error:
            raise _session_or_verb_error(error) from None
        except (TypeError, ReproError) as error:
            # Bad arguments or a schema-level rejection: the edit did not apply.
            raise WireError(SCHEMA_ERROR, str(error)) from None
        return {"ok": True, "result": protocol.edit_result_to_payload(result)}

    def _report(self, payload: Payload) -> Payload:
        request = ReportRequest.from_payload(payload)
        try:
            report, mark = self._service.report_marked(
                request.session, request.if_mark
            )
        except UnknownElementError as error:
            raise _session_or_verb_error(error) from None
        if report is None:  # ETag hit: nothing changed since if_mark
            return {"ok": True, "unchanged": True, "mark": mark}
        return {
            "ok": True,
            "report": protocol.report_to_payload(report),
            "mark": mark,
        }

    def _check(self, payload: Payload) -> Payload:
        request = CheckRequest.from_payload(payload)
        try:
            verdict = self._service.check(
                request.session, request.goal, max_domain=request.max_domain
            )
        except UnknownElementError as error:
            if error.kind == "session":
                raise WireError(UNKNOWN_SESSION, str(error)) from None
            # The goal named a role/type the schema does not have.
            raise WireError(UNKNOWN_GOAL, str(error)) from None
        except ValueError as error:
            # Unknown goal string or goal kind.
            raise WireError(UNKNOWN_GOAL, str(error)) from None
        except ReproError as error:
            raise WireError(SCHEMA_ERROR, str(error)) from None
        return {"ok": True, "check": protocol.verdict_to_payload(verdict)}

    def _close(self, payload: Payload) -> Payload:
        request = SessionRequest.from_payload(payload)
        try:
            report = self._service.close(request.session)
        except UnknownElementError as error:
            raise _session_or_verb_error(error) from None
        return {"ok": True, "report": protocol.report_to_payload(report)}

    def _drain(self, payload: Payload) -> Payload:
        request = DrainRequest.from_payload(payload)
        try:
            stats = self._service.drain(
                request.sessions, min_pending=request.min_pending
            )
        except KeyError as error:
            raise WireError(UNKNOWN_SESSION, f"unknown session: {error}") from None
        return {"ok": True, "stats": protocol.stats_to_payload(stats)}

    def _resize(self, payload: Payload) -> Payload:
        request = ResizeRequest.from_payload(payload)
        # One process is the whole deployment here: there is no pool to
        # grow or shrink.  The multi-process WorkerPool backend overrides
        # this verb with a real live migration.
        raise WireError(
            NOT_RESIZABLE,
            f"this deployment runs in-process (workers=0) and cannot "
            f"resize to {request.workers} workers",
        )


def _session_or_verb_error(error: UnknownElementError) -> WireError:
    """Map the service's UnknownElementError onto the wire code space: an
    unknown *session* (including edit-after-close) is 404, an unknown edit
    verb the client's 400; any other unknown element (a role, a type — the
    schema rejected the edit's arguments) is the 422 schema error."""
    if error.kind == "session":
        return WireError(UNKNOWN_SESSION, str(error))
    if error.kind == "edit verb":
        return WireError(UNKNOWN_VERB, str(error))
    return WireError(SCHEMA_ERROR, str(error))


class WireServer:
    """The asyncio HTTP front over one validation backend.

    Parameters
    ----------
    service:
        An existing :class:`ValidationService` to expose in-process;
        ``None`` builds the backend from ``workers``/``service_kwargs``
        and owns it (shut down with the server).
    backend:
        An explicit backend object (anything with the
        :class:`LocalBackend` surface), overriding ``service``/``workers``.
    workers:
        ``0`` (default) runs the service in-process; ``N > 0`` builds a
        :class:`repro.server.workers.WorkerPool` of N worker subprocesses
        and routes sessions to them by stable name hash.
    token:
        Shared bearer token.  When set, every ``/v1/*`` request must carry
        ``Authorization: Bearer <token>``; compared constant-time.
    host / port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`address` after :meth:`start`).
    drain_interval:
        Period (seconds) of the background service tick; ``None`` disables
        it (drains then happen only via ``/v1/drain`` and ``report``).
    """

    def __init__(
        self,
        service: ValidationService | None = None,
        *,
        backend: Backend | None = None,
        workers: int = 0,
        token: str | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        drain_interval: float | None = 0.05,
        **service_kwargs: Any,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if workers > 0 and (service is not None or backend is not None):
            raise ValueError(
                "workers=N builds its own WorkerPool backend and cannot be "
                "combined with an explicit service/backend"
            )
        self._owns_backend = backend is None and service is None
        self._backend: Backend
        if backend is not None:
            self._backend = backend
        elif service is not None:
            self._backend = LocalBackend(service)
        elif workers > 0:
            from repro.server.workers import WorkerPool

            self._backend = WorkerPool(workers, **service_kwargs)
        else:
            if "data_dir" in service_kwargs:
                raise ValueError(
                    "data_dir (the durable session log) requires a "
                    "multi-process deployment: pass workers >= 1"
                )
            self._backend = LocalBackend(ValidationService(**service_kwargs))
        self._token = token
        self._host = host
        self._port = port
        self._drain_interval = drain_interval
        self._server: asyncio.AbstractServer | None = None
        self._drain_task: asyncio.Task[None] | None = None
        self._connections: set[asyncio.Task[None]] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._closing = False

    @property
    def backend(self) -> Backend:
        """The backend this front drives (LocalBackend or WorkerPool)."""
        return self._backend

    @property
    def service(self) -> ValidationService:
        """The in-process service (LocalBackend deployments only)."""
        backend = self._backend
        if not isinstance(backend, LocalBackend):
            raise AttributeError(
                "service is only available on LocalBackend deployments"
            )
        return backend.service

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return str(host), int(port)

    @property
    def base_url(self) -> str:
        """``http://host:port`` of the running server."""
        host, port = self.address
        return f"http://{host}:{port}"

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind, start serving and start the background drain task."""
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        if self._drain_interval is not None:
            self._drain_task = asyncio.create_task(self._drain_loop())
        return self.address

    async def serve_forever(self) -> None:
        """Serve until cancelled (the ``orm-validate serve`` loop)."""
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    def begin_shutdown(self) -> None:
        """Enter lame-duck mode: every request from now on gets a
        structured ``server_shutdown`` error instead of backend access.

        Safe to call from any thread; :meth:`stop` calls it first, so a
        request racing shutdown mid-drain sees a clean 503, not a hang or
        a half-written response.
        """
        self._closing = True

    async def stop(self) -> None:
        """Stop accepting, finish in-flight requests, stop the backend."""
        self.begin_shutdown()
        if self._drain_task is not None:
            self._drain_task.cancel()
            try:
                await self._drain_task
            except asyncio.CancelledError:
                pass
            self._drain_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Closing the listener does not touch established connections: idle
        # keep-alive clients sit blocked in readline forever.  Close their
        # transports so every connection task unwinds promptly (in-flight
        # handlers were already answered or see the lame-duck 503).
        for writer in list(self._writers):
            writer.close()
        if self._connections:
            _, pending = await asyncio.wait(self._connections, timeout=5.0)
            for task in pending:
                task.cancel()
        if self._owns_backend:
            await asyncio.get_running_loop().run_in_executor(
                None, self._backend.shutdown
            )

    async def _drain_loop(self) -> None:
        """The background backend tick (errors are survivable: a failing
        drain is retried next period; the verbs keep working regardless)."""
        loop = asyncio.get_running_loop()
        interval = self._drain_interval
        assert interval is not None  # the task only runs when configured
        while True:
            await asyncio.sleep(interval)
            try:
                await loop.run_in_executor(None, self._backend.tick)
            except asyncio.CancelledError:  # pragma: no cover - task teardown
                raise
            except Exception:  # pragma: no cover - keep ticking
                continue

    # -- HTTP plumbing -----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task: asyncio.Task[None] | None = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        self._writers.add(writer)
        try:
            while True:
                keep_alive = await self._handle_one_request(reader, writer)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass  # client went away; nothing to answer
        except (asyncio.LimitOverrunError, ValueError):
            # A request line or header beyond the StreamReader limit: still
            # answer structurally before dropping the connection.
            try:
                await self._respond(
                    writer,
                    400,
                    WireError(
                        MALFORMED_REQUEST, "request line or headers too large"
                    ).to_payload(),
                    keep_alive=False,
                )
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _handle_one_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Parse one HTTP/1.1 request, dispatch, respond.  Returns whether
        the connection should be kept alive for another request."""
        request_line = await reader.readline()
        if not request_line or request_line in (b"\r\n", b"\n"):
            return False
        try:
            method, path, _version = request_line.decode("latin-1").split(None, 2)
        except ValueError:
            await self._respond(
                writer,
                400,
                WireError(MALFORMED_REQUEST, "unparseable request line").to_payload(),
                keep_alive=False,
            )
            return False
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        keep_alive = headers.get("connection", "keep-alive").lower() != "close"
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            await self._respond(
                writer,
                400,
                WireError(MALFORMED_REQUEST, "bad content-length").to_payload(),
                keep_alive=False,
            )
            return False
        if (
            self._token is not None
            and path.startswith("/v1/")
            and not self._authorized(headers)
        ):
            # Reject on the headers alone: an unauthenticated client must
            # not be able to make the server buffer MAX_BODY_BYTES per
            # request.  Ordinary-sized bodies are still drained first so
            # the 401 is reliably observable (closing with unread data can
            # RST the response away); oversized ones cost the client its
            # connection instead.
            drained = length <= AUTH_REJECT_DRAIN_BYTES
            if drained and length:
                await reader.readexactly(length)
            await self._respond(
                writer,
                401,
                WireError(
                    UNAUTHORIZED,
                    "missing or invalid bearer token "
                    "(send 'Authorization: Bearer <token>')",
                ).to_payload(),
                keep_alive=keep_alive and drained,
            )
            return keep_alive and drained
        body = await reader.readexactly(length) if length else b""
        status, payload = await self._dispatch(method.upper(), path, body)
        await self._respond(writer, status, payload, keep_alive=keep_alive)
        return keep_alive

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Payload,
        *,
        keep_alive: bool,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- dispatch ----------------------------------------------------------

    def _authorized(self, headers: dict[str, str]) -> bool:
        """Constant-time check of the shared bearer token (if configured)."""
        if self._token is None:
            return True
        provided = headers.get("authorization", "")
        scheme, _, credential = provided.partition(" ")
        if scheme.lower() != "bearer":
            return False
        return hmac.compare_digest(
            credential.strip().encode("utf-8"), self._token.encode("utf-8")
        )

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, Payload]:
        """Route one request; *every* failure becomes a structured error."""
        try:
            if path == "/healthz":
                # Deliberately unauthenticated: orchestrator liveness
                # probes must keep working; the body is census-only.
                if method != "GET":
                    raise WireError(METHOD_NOT_ALLOWED, "/healthz is GET-only")
                return 200, await asyncio.get_running_loop().run_in_executor(
                    None, self._healthz
                )
            verb = path[len("/v1/"):] if path.startswith("/v1/") else None
            if verb not in WIRE_VERBS:
                raise WireError(UNKNOWN_ENDPOINT, f"no such endpoint: {path}")
            if method != "POST":
                raise WireError(METHOD_NOT_ALLOWED, f"{path} is POST-only")
            # Auth was already enforced at the header phase
            # (_handle_one_request), before the body was read.
            if self._closing:
                raise WireError(SERVER_SHUTDOWN, "server is shutting down")
            try:
                payload = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise WireError(
                    MALFORMED_REQUEST, f"request body is not valid JSON: {error}"
                ) from None
            result = await asyncio.get_running_loop().run_in_executor(
                None, self._backend.handle, verb, payload
            )
            return 200, result
        except WireError as error:
            return error.http_status, error.to_payload()
        except RuntimeError as error:
            # The executor (or a service pool) refusing new work is the
            # shutdown race; any other RuntimeError is a genuine bug.
            if self._closing or "shutdown" in str(error):
                wrapped = WireError(SERVER_SHUTDOWN, f"server is shutting down: {error}")
            else:
                wrapped = WireError(INTERNAL_ERROR, f"RuntimeError: {error}")
            return wrapped.http_status, wrapped.to_payload()
        except Exception as error:  # noqa: BLE001 - the wire must stay structured
            wrapped = WireError(INTERNAL_ERROR, f"{type(error).__name__}: {error}")
            return wrapped.http_status, wrapped.to_payload()

    def _healthz(self) -> Payload:
        return {
            "ok": True,
            "status": "shutting_down" if self._closing else "serving",
            "wire_version": WIRE_VERSION,
            **self._backend.health_payload(),
        }


class ServerThread:
    """Run a :class:`WireServer` on a dedicated event-loop thread.

    The synchronous-world adapter used by the tests, the benchmark and any
    embedding that is not already inside asyncio::

        with ServerThread(max_workers=4) as server:
            client = ServiceClient(server.base_url)
            ...

    ``stop()`` (or leaving the context) shuts the loop and, when the
    server owns its backend, the backend (service or worker pool) too.
    """

    def __init__(
        self, service: ValidationService | None = None, **server_kwargs: Any
    ) -> None:
        self._server = WireServer(service, **server_kwargs)
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started = threading.Event()
        self._stop_event: asyncio.Event | None = None
        self._startup_error: BaseException | None = None

    @property
    def server(self) -> WireServer:
        return self._server

    @property
    def address(self) -> tuple[str, int]:
        return self._server.address

    @property
    def base_url(self) -> str:
        return self._server.base_url

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-wire-server", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=10.0)
        if self._startup_error is not None:
            raise RuntimeError("wire server failed to start") from self._startup_error
        if not self._started.is_set():
            raise RuntimeError("wire server did not start within 10s")
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            await self._server.start()
        except BaseException as error:  # pragma: no cover - bind failure path
            self._startup_error = error
            self._started.set()
            return
        self._started.set()
        await self._stop_event.wait()
        await self._server.stop()

    def begin_shutdown(self) -> None:
        """Thread-safe lame-duck switch (see :meth:`WireServer.begin_shutdown`)."""
        self._server.begin_shutdown()

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=15.0)
            self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
