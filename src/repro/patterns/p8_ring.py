"""Pattern 8 — Incompatible ring-constraint combinations (paper Fig. 12, Table 1).

Several ring constraints may be stacked on the same role pair; the
combination is unsatisfiable exactly when no non-empty relation can satisfy
all of them.  The paper derives the compatible combinations (Table 1) from
Halpin's Euler diagram (Fig. 12); we *compute* compatibility semantically in
:mod:`repro.rings.algebra`, which the tests prove agrees with every fact the
paper states.

The diagnostic names the *minimal incompatible core* — the smallest subset
of the declared kinds that is already unsatisfiable (e.g. ``(Sym, it, ans)``
reduces to itself, ``(Sym, ac, ir)`` reduces to ``(Sym, ac)``), which tells
the modeler which constraint to remove.
"""

from __future__ import annotations

from repro.orm.schema import Schema
from repro.patterns.base import RingPairSitePattern, Violation
from repro.rings.algebra import format_combination, is_compatible
from repro.rings.table1 import minimal_incompatible_core


class RingPattern(RingPairSitePattern):
    """Detect role pairs whose ring constraints are jointly unsatisfiable.

    Check sites are the ring-constrained role pairs; a site is dirty when
    any ring constraint on the pair was added or removed.
    """

    pattern_id = "P8"
    name = "Ring constraints"
    description = (
        "Ring constraints that are disjoint in the Euler diagram (e.g. "
        "symmetric plus acyclic) cannot hold together on a populated role pair."
    )

    def check_site(self, schema: Schema, site: tuple[str, str]) -> list[Violation]:
        constraints = schema.ring_constraints_on(site)
        kinds = frozenset(constraint.kind for constraint in constraints)
        if not kinds or is_compatible(kinds):
            return []
        core = minimal_incompatible_core(kinds) or kinds
        labels = tuple(constraint.label or "" for constraint in constraints)
        fact_name = schema.role(site[0]).fact_type
        return [
            self._violation(
                message=(
                    f"the ring constraints {format_combination(kinds)} on fact "
                    f"type '{fact_name}' cannot be satisfied by any non-empty "
                    f"relation; the incompatible core is "
                    f"{format_combination(core)} (not in Table 1)"
                ),
                roles=site,
                constraints=labels,
            )
        ]
