"""The paper's nine unsatisfiability patterns plus the related-work rules."""

from repro.patterns.advisories import WELLFORMED_CHECKS
from repro.patterns.base import Pattern, ValidationReport, Violation
from repro.patterns.engine import (
    ALL_IDS,
    ALL_PATTERNS,
    FULL_REGISTRY,
    PATTERN_IDS,
    PatternEngine,
    pattern_by_id,
)
from repro.patterns.explain import explain, suggest_repairs
from repro.patterns.extensions import EXTENSION_IDS, EXTENSION_PATTERNS
from repro.patterns.formation_rules import (
    FORMATION_CHECKS,
    RuleFinding,
    check_formation_rules,
)
from repro.patterns.incremental import (
    CheckScope,
    IncrementalEngine,
    scope_from_changes,
)
from repro.patterns.propagation import (
    DerivedUnsat,
    IncrementalPropagator,
    PropagationResult,
    propagate,
)
from repro.patterns.p1_common_supertype import TopCommonSupertypePattern
from repro.patterns.p2_exclusive_subtypes import ExclusiveSubtypesPattern
from repro.patterns.p3_exclusion_mandatory import ExclusionMandatoryPattern
from repro.patterns.p4_frequency_value import FrequencyValuePattern
from repro.patterns.p5_value_exclusion_frequency import ValueExclusionFrequencyPattern
from repro.patterns.p6_set_comparison import SetComparisonPattern
from repro.patterns.p7_uniqueness_frequency import UniquenessFrequencyPattern
from repro.patterns.p8_ring import RingPattern
from repro.patterns.p9_subtype_loop import SubtypeLoopPattern

__all__ = [
    "ALL_IDS",
    "ALL_PATTERNS",
    "CheckScope",
    "DerivedUnsat",
    "FORMATION_CHECKS",
    "IncrementalEngine",
    "IncrementalPropagator",
    "scope_from_changes",
    "EXTENSION_IDS",
    "EXTENSION_PATTERNS",
    "FULL_REGISTRY",
    "PATTERN_IDS",
    "PropagationResult",
    "WELLFORMED_CHECKS",
    "explain",
    "propagate",
    "suggest_repairs",
    "ExclusionMandatoryPattern",
    "ExclusiveSubtypesPattern",
    "FrequencyValuePattern",
    "Pattern",
    "PatternEngine",
    "RingPattern",
    "RuleFinding",
    "SetComparisonPattern",
    "SubtypeLoopPattern",
    "TopCommonSupertypePattern",
    "UniquenessFrequencyPattern",
    "ValidationReport",
    "ValueExclusionFrequencyPattern",
    "Violation",
    "check_formation_rules",
    "pattern_by_id",
]
