"""The related-work rules the paper analyzes (Sec. 3): Halpin's 7 formation
rules [H89] and RIDL-A's set-constraint analysis rules [DMV].

The paper's central point in Sec. 3 is a *classification*: most of these
rules are good-modeling guidance (they avoid redundant or nonsensical
constraints) but are **not** unsatisfiability detectors — a rule is
*relevant* only "if in case it is violated, there is an unsatisfiable role".
This module implements the rules as checks and tags every finding with the
paper's relevance analysis, so the test suite can assert the classification
on concrete schemas (e.g. Fig. 14 violates formation rule 6 yet all roles
are satisfiable).

Summary of the paper's verdicts:

====  ===========================================================  ========
Rule  Statement                                                    Relevant
====  ===========================================================  ========
FR1   never use FC(1-1); use uniqueness instead                    no
FR2   no frequency constraint may span a whole predicate           only min>1 (refined by P7)
FR3   no uniqueness and frequency on the same role sequence        only min>1 (refined by P7)
FR4   no uniqueness spanned by a longer uniqueness                 no
FR5   no exclusion on a role marked mandatory                      yes (= P3)
FR6   no exclusion between roles of sub/supertype players          no (Fig. 14)
FR7   frequency upper bound below partner cardinality product      binary case = P4
S1    a subset constraint may not be superfluous (implied)         no
S2    a subset constraint may not contain loops                    no (loops force equality, P9 covers subtypes)
S3    an equality constraint may not be superfluous                no
S4    excluded OTSETs may not have a common subset                 yes but = definition of exclusion (P2/P6 make it operational)
====  ===========================================================  ========
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import pairs
from repro.orm.constraints import (
    EqualityConstraint,
    ExclusionConstraint,
    FrequencyConstraint,
    SubsetConstraint,
    UniquenessConstraint,
)
from repro.orm.schema import Schema
from repro.setcomp import SetPathGraph


@dataclass(frozen=True)
class RuleFinding:
    """One formation/RIDL rule violation.

    ``relevant`` reproduces the paper's Sec. 3 verdict: does violating this
    rule *by itself* imply an unsatisfiable role?  ``related_pattern`` names
    the pattern that refines the rule when one exists.
    """

    rule_id: str
    source: str  # "H89" or "RIDL"
    message: str
    relevant: bool
    elements: tuple[str, ...] = ()
    related_pattern: str | None = None


def check_formation_rules(schema: Schema) -> list[RuleFinding]:
    """Run all Halpin [H89] formation rules plus RIDL-A S1–S4."""
    findings: list[RuleFinding] = []
    findings.extend(_fr1_frequency_one(schema))
    findings.extend(_fr2_spanning_frequency(schema))
    findings.extend(_fr3_uniqueness_with_frequency(schema))
    findings.extend(_fr4_spanned_uniqueness(schema))
    findings.extend(_fr5_exclusion_on_mandatory(schema))
    findings.extend(_fr6_exclusion_across_subtyping(schema))
    findings.extend(_fr7_frequency_vs_cardinality(schema))
    findings.extend(_s1_s3_superfluous_setpaths(schema))
    findings.extend(_s2_subset_loops(schema))
    return findings


def _fr1_frequency_one(schema: Schema) -> list[RuleFinding]:
    """FR1: FC(1-1) should be written as a uniqueness constraint."""
    found = []
    for constraint in schema.constraints_of(FrequencyConstraint):
        if constraint.min == 1 and constraint.max == 1:
            found.append(
                RuleFinding(
                    rule_id="FR1",
                    source="H89",
                    message=(
                        f"<{constraint.label}> is FC(1-1); prefer a uniqueness "
                        "constraint (purely notational — not an unsatisfiability)"
                    ),
                    relevant=False,
                    elements=constraint.roles,
                )
            )
    return found


def _fr2_spanning_frequency(schema: Schema) -> list[RuleFinding]:
    """FR2: no frequency may span a whole predicate.

    The paper loosens this: only ``min > 1`` is unsatisfiable (Pattern 7);
    ``FC(1-max)`` spanning the predicate is merely redundant.
    """
    found = []
    for constraint in schema.constraints_of(FrequencyConstraint):
        if len(constraint.roles) != 2:
            continue
        relevant = constraint.min > 1
        found.append(
            RuleFinding(
                rule_id="FR2",
                source="H89",
                message=(
                    f"<{constraint.label}> spans a whole predicate; "
                    + (
                        "with min > 1 this is unsatisfiable (Pattern 7)"
                        if relevant
                        else "with min = 1 it is redundant but satisfiable"
                    )
                ),
                relevant=relevant,
                elements=constraint.roles,
                related_pattern="P7" if relevant else None,
            )
        )
    return found


def _fr3_uniqueness_with_frequency(schema: Schema) -> list[RuleFinding]:
    """FR3: no role sequence may carry both uniqueness and frequency.

    Loosened exactly as the paper describes: FC(1-max) + uniqueness is
    equivalent to FC(1-1) — stylistically poor but satisfiable; only a lower
    bound above 1 contradicts the uniqueness (Pattern 7).
    """
    found = []
    for constraint in schema.constraints_of(FrequencyConstraint):
        if not schema.uniqueness_on(constraint.roles):
            continue
        relevant = constraint.min > 1
        found.append(
            RuleFinding(
                rule_id="FR3",
                source="H89",
                message=(
                    f"<{constraint.label}> coexists with a uniqueness constraint "
                    "on the same role(s); "
                    + (
                        "min > 1 makes this unsatisfiable (Pattern 7)"
                        if relevant
                        else "it is equivalent to FC(1-1), satisfiable but redundant"
                    )
                ),
                relevant=relevant,
                elements=constraint.roles,
                related_pattern="P7" if relevant else None,
            )
        )
    return found


def _fr4_spanned_uniqueness(schema: Schema) -> list[RuleFinding]:
    """FR4: a uniqueness constraint spanned by a longer one is redundant."""
    found = []
    uniques = schema.constraints_of(UniquenessConstraint)
    for shorter in uniques:
        for longer in uniques:
            if shorter is longer:
                continue
            if set(shorter.roles) < set(longer.roles):
                found.append(
                    RuleFinding(
                        rule_id="FR4",
                        source="H89",
                        message=(
                            f"uniqueness <{longer.label}> is spanned by the shorter "
                            f"<{shorter.label}> and is therefore implied "
                            "(not an unsatisfiability)"
                        ),
                        relevant=False,
                        elements=longer.roles,
                    )
                )
    return found


def _fr5_exclusion_on_mandatory(schema: Schema) -> list[RuleFinding]:
    """FR5: exclusion between roles, one of which is mandatory — this *is*
    Pattern 3 (the paper makes the subtype case explicit there)."""
    found = []
    mandatory = schema.mandatory_role_names()
    for constraint in schema.constraints_of(ExclusionConstraint):
        if not constraint.is_role_exclusion:
            continue
        flagged = [role for role in constraint.single_roles() if role in mandatory]
        for role_name in flagged:
            found.append(
                RuleFinding(
                    rule_id="FR5",
                    source="H89",
                    message=(
                        f"exclusion <{constraint.label}> involves the mandatory "
                        f"role '{role_name}' — Pattern 3 decides whether roles "
                        "become unsatisfiable"
                    ),
                    relevant=True,
                    elements=constraint.single_roles(),
                    related_pattern="P3",
                )
            )
    return found


def _fr6_exclusion_across_subtyping(schema: Schema) -> list[RuleFinding]:
    """FR6: exclusion between roles whose players are sub/supertype-related.

    The paper demonstrates with Fig. 14 that violating this rule does *not*
    imply unsatisfiable roles, so ``relevant`` is always False here.
    """
    found = []
    for constraint in schema.constraints_of(ExclusionConstraint):
        if not constraint.is_role_exclusion:
            continue
        for first, second in pairs(constraint.single_roles()):
            first_player = schema.role(first).player
            second_player = schema.role(second).player
            related = schema.is_subtype_of(
                first_player, second_player
            ) or schema.is_subtype_of(second_player, first_player)
            if related:
                found.append(
                    RuleFinding(
                        rule_id="FR6",
                        source="H89",
                        message=(
                            f"exclusion <{constraint.label}> spans roles of "
                            f"'{first_player}' and '{second_player}', which are "
                            "subtype-related; legal and possibly satisfiable "
                            "(paper Fig. 14)"
                        ),
                        relevant=False,
                        elements=(first, second),
                    )
                )
    return found


def _fr7_frequency_vs_cardinality(schema: Schema) -> list[RuleFinding]:
    """FR7: frequency bounds versus the partner's maximum cardinality.

    In the binary fragment the partner's maximum cardinality is its value
    constraint size, so the semantically relevant part of FR7 is exactly
    Pattern 4 (paper Sec. 3, footnote 5).
    """
    found = []
    for constraint in schema.constraints_of(FrequencyConstraint):
        if len(constraint.roles) != 1:
            continue
        partner = schema.partner_role(constraint.roles[0])
        pool = schema.value_count(partner.player)
        if pool is None:
            continue
        if constraint.min > pool:
            found.append(
                RuleFinding(
                    rule_id="FR7",
                    source="H89",
                    message=(
                        f"<{constraint.label}> demands {constraint.min} partners "
                        f"but '{partner.player}' admits only {pool} values — "
                        "unsatisfiable (Pattern 4)"
                    ),
                    relevant=True,
                    elements=constraint.roles,
                    related_pattern="P4",
                )
            )
    return found


def _s1_s3_superfluous_setpaths(schema: Schema) -> list[RuleFinding]:
    """RIDL S1/S3: a subset (equality) constraint implied by the others is
    superfluous.  Interesting style feedback, never an unsatisfiability."""
    found = []
    subsets = schema.constraints_of(SubsetConstraint)
    equalities = schema.constraints_of(EqualityConstraint)
    for index, constraint in enumerate(subsets):
        graph = SetPathGraph()
        for other_index, other in enumerate(subsets):
            if other_index != index:
                graph.add_subset(other.sub, other.sup, other.label or "subset")
        for other in equalities:
            graph.add_subset(other.first, other.second, other.label or "equality")
            graph.add_subset(other.second, other.first, other.label or "equality")
        if graph.subset_holds(constraint.sub, constraint.sup):
            found.append(
                RuleFinding(
                    rule_id="S1",
                    source="RIDL",
                    message=(
                        f"subset constraint <{constraint.label}> is implied by the "
                        "other set-comparison constraints (superfluous, not "
                        "unsatisfiable)"
                    ),
                    relevant=False,
                    elements=constraint.sub + constraint.sup,
                )
            )
    for index, constraint in enumerate(equalities):
        graph = SetPathGraph()
        for other in subsets:
            graph.add_subset(other.sub, other.sup, other.label or "subset")
        for other_index, other in enumerate(equalities):
            if other_index != index:
                graph.add_subset(other.first, other.second, other.label or "equality")
                graph.add_subset(other.second, other.first, other.label or "equality")
        if graph.subset_holds(constraint.first, constraint.second) and graph.subset_holds(
            constraint.second, constraint.first
        ):
            found.append(
                RuleFinding(
                    rule_id="S3",
                    source="RIDL",
                    message=(
                        f"equality constraint <{constraint.label}> is implied by "
                        "the other set-comparison constraints (superfluous)"
                    ),
                    relevant=False,
                    elements=constraint.first + constraint.second,
                )
            )
    return found


def _s2_subset_loops(schema: Schema) -> list[RuleFinding]:
    """RIDL S2: subset-constraint loops.

    Not an unsatisfiability (paper Sec. 3): role subsets are non-strict, so
    a loop merely forces the involved populations to be equal.  Subtype
    links *are* strict — that case is Pattern 9, not this rule.
    """
    found = []
    graph = SetPathGraph.from_schema(schema)
    seen: set[tuple[tuple[str, ...], ...]] = set()
    for constraint in schema.constraints_of(SubsetConstraint):
        if graph.subset_holds(constraint.sup, constraint.sub):
            key = tuple(sorted((constraint.sub, constraint.sup)))
            if key in seen:
                continue
            seen.add(key)
            found.append(
                RuleFinding(
                    rule_id="S2",
                    source="RIDL",
                    message=(
                        f"subset constraint <{constraint.label}> lies on a loop; "
                        f"the populations of {constraint.sub} and {constraint.sup} "
                        "are forced equal but may be non-empty (not an "
                        "unsatisfiability)"
                    ),
                    relevant=False,
                    elements=constraint.sub + constraint.sup,
                )
            )
    return found
