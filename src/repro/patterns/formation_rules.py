"""The related-work rules the paper analyzes (Sec. 3): Halpin's 7 formation
rules [H89] and RIDL-A's set-constraint analysis rules [DMV].

The paper's central point in Sec. 3 is a *classification*: most of these
rules are good-modeling guidance (they avoid redundant or nonsensical
constraints) but are **not** unsatisfiability detectors — a rule is
*relevant* only "if in case it is violated, there is an unsatisfiable role".
This module implements the rules as checks and tags every finding with the
paper's relevance analysis, so the test suite can assert the classification
on concrete schemas (e.g. Fig. 14 violates formation rule 6 yet all roles
are satisfiable).

Every rule is a **site-based** check (the same ``iter_sites`` /
``check_site`` / ``site_dirty`` triad as the nine patterns, see
:mod:`repro.patterns.base`): the check site is the constraint the rule
judges — a frequency constraint for FR1/FR2/FR3/FR7, a uniqueness
constraint for FR4, an exclusion for FR5/FR6, a subset/equality for
S1/S2/S3.  :class:`repro.patterns.incremental.IncrementalEngine` maintains
the per-site :class:`RuleFinding` stores from the schema's change journal;
:func:`check_formation_rules` is the from-scratch entry point running all
checks with ``scope=None``.  The set-comparison rules (S1–S3) consult the
subset/equality graph, so they are ``setcomp_sensitive`` and are re-checked
exactly for the touched SetPath component.

Summary of the paper's verdicts:

====  ===========================================================  ========
Rule  Statement                                                    Relevant
====  ===========================================================  ========
FR1   never use FC(1-1); use uniqueness instead                    no
FR2   no frequency constraint may span a whole predicate           only min>1 (refined by P7)
FR3   no uniqueness and frequency on the same role sequence        only min>1 (refined by P7)
FR4   no uniqueness spanned by a longer uniqueness                 no
FR5   no exclusion on a role marked mandatory                      yes (= P3)
FR6   no exclusion between roles of sub/supertype players          no (Fig. 14)
FR7   frequency upper bound below partner cardinality product      binary case = P4
S1    a subset constraint may not be superfluous (implied)         no
S2    a subset constraint may not contain loops                    no (loops force equality, P9 covers subtypes)
S3    an equality constraint may not be superfluous                no
S4    excluded OTSETs may not have a common subset                 yes but = definition of exclusion (P2/P6 make it operational)
====  ===========================================================  ========
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import pairs
from repro.orm.constraints import (
    EqualityConstraint,
    ExclusionConstraint,
    FrequencyConstraint,
    SubsetConstraint,
    UniquenessConstraint,
)
from repro.orm.schema import Schema
from repro.patterns.base import ConstraintSitePattern
from repro.setcomp import SetPathGraph


@dataclass(frozen=True)
class RuleFinding:
    """One formation/RIDL rule violation.

    ``relevant`` reproduces the paper's Sec. 3 verdict: does violating this
    rule *by itself* imply an unsatisfiable role?  ``related_pattern`` names
    the pattern that refines the rule when one exists.
    """

    rule_id: str
    source: str  # "H89" or "RIDL"
    message: str
    relevant: bool
    elements: tuple[str, ...] = ()
    related_pattern: str | None = None


class FrequencyOneCheck(ConstraintSitePattern):
    """FR1: FC(1-1) should be written as a uniqueness constraint."""

    pattern_id = "FR1"
    name = "FC(1-1) instead of uniqueness"
    description = "FC(1-1) is notational; prefer a uniqueness constraint."
    constraint_class = FrequencyConstraint

    def check_site(self, schema: Schema, site: FrequencyConstraint) -> list[RuleFinding]:
        if site.min != 1 or site.max != 1:
            return []
        return [
            RuleFinding(
                rule_id="FR1",
                source="H89",
                message=(
                    f"<{site.label}> is FC(1-1); prefer a uniqueness "
                    "constraint (purely notational — not an unsatisfiability)"
                ),
                relevant=False,
                elements=site.roles,
            )
        ]


class SpanningFrequencyCheck(ConstraintSitePattern):
    """FR2: no frequency may span a whole predicate.

    The paper loosens this: only ``min > 1`` is unsatisfiable (Pattern 7);
    ``FC(1-max)`` spanning the predicate is merely redundant.
    """

    pattern_id = "FR2"
    name = "Spanning frequency"
    description = "A frequency constraint over the whole predicate."
    constraint_class = FrequencyConstraint

    def check_site(self, schema: Schema, site: FrequencyConstraint) -> list[RuleFinding]:
        if len(site.roles) != 2:
            return []
        relevant = site.min > 1
        return [
            RuleFinding(
                rule_id="FR2",
                source="H89",
                message=(
                    f"<{site.label}> spans a whole predicate; "
                    + (
                        "with min > 1 this is unsatisfiable (Pattern 7)"
                        if relevant
                        else "with min = 1 it is redundant but satisfiable"
                    )
                ),
                relevant=relevant,
                elements=site.roles,
                related_pattern="P7" if relevant else None,
            )
        ]


class UniquenessWithFrequencyCheck(ConstraintSitePattern):
    """FR3: no role sequence may carry both uniqueness and frequency.

    Loosened exactly as the paper describes: FC(1-max) + uniqueness is
    equivalent to FC(1-1) — stylistically poor but satisfiable; only a lower
    bound above 1 contradicts the uniqueness (Pattern 7).  The check site is
    the frequency constraint; a uniqueness appearing on (or vanishing from)
    the same roles dirties it through the co-reference closure.
    """

    pattern_id = "FR3"
    name = "Uniqueness plus frequency"
    description = "Uniqueness and frequency on the same role sequence."
    constraint_class = FrequencyConstraint

    def check_site(self, schema: Schema, site: FrequencyConstraint) -> list[RuleFinding]:
        if not schema.uniqueness_on(site.roles):
            return []
        relevant = site.min > 1
        return [
            RuleFinding(
                rule_id="FR3",
                source="H89",
                message=(
                    f"<{site.label}> coexists with a uniqueness constraint "
                    "on the same role(s); "
                    + (
                        "min > 1 makes this unsatisfiable (Pattern 7)"
                        if relevant
                        else "it is equivalent to FC(1-1), satisfiable but redundant"
                    )
                ),
                relevant=relevant,
                elements=site.roles,
                related_pattern="P7" if relevant else None,
            )
        ]


class SpannedUniquenessCheck(ConstraintSitePattern):
    """FR4: a uniqueness constraint spanned by a shorter one is redundant.

    The check site is the *longer* (spanned) uniqueness constraint; adding
    or removing a shorter uniqueness dirties it via their shared roles.
    """

    pattern_id = "FR4"
    name = "Spanned uniqueness"
    description = "A uniqueness implied by a shorter uniqueness."
    constraint_class = UniquenessConstraint

    def check_site(self, schema: Schema, site: UniquenessConstraint) -> list[RuleFinding]:
        found = []
        seen: set[int] = set()
        site_roles = set(site.roles)
        for role_name in site.roles:
            for shorter in schema.constraints_referencing_role(role_name):
                if (
                    not isinstance(shorter, UniquenessConstraint)
                    or shorter is site
                    or id(shorter) in seen
                ):
                    continue
                seen.add(id(shorter))
                if set(shorter.roles) < site_roles:
                    found.append(
                        RuleFinding(
                            rule_id="FR4",
                            source="H89",
                            message=(
                                f"uniqueness <{site.label}> is spanned by the shorter "
                                f"<{shorter.label}> and is therefore implied "
                                "(not an unsatisfiability)"
                            ),
                            relevant=False,
                            elements=site.roles,
                        )
                    )
        return found


class ExclusionOnMandatoryCheck(ConstraintSitePattern):
    """FR5: exclusion between roles, one of which is mandatory — this *is*
    Pattern 3 (the paper makes the subtype case explicit there)."""

    pattern_id = "FR5"
    name = "Exclusion on mandatory role"
    description = "An exclusion involving a mandatory role (Pattern 3)."
    constraint_class = ExclusionConstraint

    def check_site(self, schema: Schema, site: ExclusionConstraint) -> list[RuleFinding]:
        if not site.is_role_exclusion:
            return []
        found = []
        for role_name in site.single_roles():
            if not schema.is_role_mandatory(role_name):
                continue
            found.append(
                RuleFinding(
                    rule_id="FR5",
                    source="H89",
                    message=(
                        f"exclusion <{site.label}> involves the mandatory "
                        f"role '{role_name}' — Pattern 3 decides whether roles "
                        "become unsatisfiable"
                    ),
                    relevant=True,
                    elements=site.single_roles(),
                    related_pattern="P3",
                )
            )
        return found


class ExclusionAcrossSubtypingCheck(ConstraintSitePattern):
    """FR6: exclusion between roles whose players are sub/supertype-related.

    The paper demonstrates with Fig. 14 that violating this rule does *not*
    imply unsatisfiable roles, so ``relevant`` is always False here.
    """

    pattern_id = "FR6"
    name = "Exclusion across subtyping"
    description = "An exclusion between roles of subtype-related players."
    constraint_class = ExclusionConstraint
    players_sensitive = True

    def check_site(self, schema: Schema, site: ExclusionConstraint) -> list[RuleFinding]:
        if not site.is_role_exclusion:
            return []
        found = []
        for first, second in pairs(site.single_roles()):
            first_player = schema.role(first).player
            second_player = schema.role(second).player
            related = schema.is_subtype_of(
                first_player, second_player
            ) or schema.is_subtype_of(second_player, first_player)
            if related:
                found.append(
                    RuleFinding(
                        rule_id="FR6",
                        source="H89",
                        message=(
                            f"exclusion <{site.label}> spans roles of "
                            f"'{first_player}' and '{second_player}', which are "
                            "subtype-related; legal and possibly satisfiable "
                            "(paper Fig. 14)"
                        ),
                        relevant=False,
                        elements=(first, second),
                    )
                )
        return found


class FrequencyVsCardinalityCheck(ConstraintSitePattern):
    """FR7: frequency bounds versus the partner's maximum cardinality.

    In the binary fragment the partner's maximum cardinality is its value
    constraint size, so the semantically relevant part of FR7 is exactly
    Pattern 4 (paper Sec. 3, footnote 5).
    """

    pattern_id = "FR7"
    name = "Frequency vs partner cardinality"
    description = "A frequency lower bound above the partner's value pool."
    constraint_class = FrequencyConstraint
    players_sensitive = True

    def check_site(self, schema: Schema, site: FrequencyConstraint) -> list[RuleFinding]:
        if len(site.roles) != 1:
            return []
        partner = schema.partner_role(site.roles[0])
        pool = schema.value_count(partner.player)
        if pool is None or site.min <= pool:
            return []
        return [
            RuleFinding(
                rule_id="FR7",
                source="H89",
                message=(
                    f"<{site.label}> demands {site.min} partners "
                    f"but '{partner.player}' admits only {pool} values — "
                    "unsatisfiable (Pattern 4)"
                ),
                relevant=True,
                elements=site.roles,
                related_pattern="P4",
            )
        ]


class _SetPathRuleCheck(ConstraintSitePattern):
    """Base for the RIDL set-comparison rules (S1-S3): build **one**
    :class:`SetPathGraph` per scoped run and share it across every in-scope
    site, instead of rebuilding a graph inside the site loop.

    The superfluousness rules (S1/S3) must judge each site against the
    graph *without* the site's own edges; since constraint labels are
    unique and non-empty, ``subset_holds(..., exclude_origin=site.label)``
    prunes exactly those edges during the BFS, so the shared graph serves
    every site.  A refresh therefore builds at most one graph per rule —
    and the BFS only ever walks the queried (touched) component — where
    the previous implementation built one graph per dirty site.
    """

    def check_scoped(self, schema: Schema, scope=None):
        sites = list(self.iter_sites(schema, scope))
        if not sites:
            return {}
        # Inside a refresh the graph is shared across every set-comparison
        # check via the scope; a from-scratch run builds its own.
        graph = (
            scope.setpath_graph(schema)
            if scope is not None
            else SetPathGraph.from_schema(schema)
        )
        results = {}
        for key, site in sites:
            found = self._check_with_graph(schema, graph, site)
            if found:
                results[key] = tuple(found)
        return results

    def check_site(self, schema: Schema, site) -> list[RuleFinding]:
        return self._check_with_graph(schema, SetPathGraph.from_schema(schema), site)

    def _check_with_graph(
        self, schema: Schema, graph: SetPathGraph, site
    ) -> list[RuleFinding]:
        raise NotImplementedError  # pragma: no cover - abstract


class SuperfluousSubsetCheck(_SetPathRuleCheck):
    """RIDL S1: a subset constraint implied by the others is superfluous.
    Interesting style feedback, never an unsatisfiability."""

    pattern_id = "S1"
    name = "Superfluous subset"
    description = "A subset constraint implied by the other SetPaths."
    constraint_class = SubsetConstraint
    setcomp_sensitive = True

    def _check_with_graph(
        self, schema: Schema, graph: SetPathGraph, site: SubsetConstraint
    ) -> list[RuleFinding]:
        if not graph.subset_holds(site.sub, site.sup, exclude_origin=site.label):
            return []
        return [
            RuleFinding(
                rule_id="S1",
                source="RIDL",
                message=(
                    f"subset constraint <{site.label}> is implied by the "
                    "other set-comparison constraints (superfluous, not "
                    "unsatisfiable)"
                ),
                relevant=False,
                elements=site.sub + site.sup,
            )
        ]


class SuperfluousEqualityCheck(_SetPathRuleCheck):
    """RIDL S3: an equality constraint implied by the others is superfluous."""

    pattern_id = "S3"
    name = "Superfluous equality"
    description = "An equality constraint implied by the other SetPaths."
    constraint_class = EqualityConstraint
    setcomp_sensitive = True

    def _check_with_graph(
        self, schema: Schema, graph: SetPathGraph, site: EqualityConstraint
    ) -> list[RuleFinding]:
        if not (
            graph.subset_holds(site.first, site.second, exclude_origin=site.label)
            and graph.subset_holds(site.second, site.first, exclude_origin=site.label)
        ):
            return []
        return [
            RuleFinding(
                rule_id="S3",
                source="RIDL",
                message=(
                    f"equality constraint <{site.label}> is implied by "
                    "the other set-comparison constraints (superfluous)"
                ),
                relevant=False,
                elements=site.first + site.second,
            )
        ]


class SubsetLoopCheck(_SetPathRuleCheck):
    """RIDL S2: subset-constraint loops.

    Not an unsatisfiability (paper Sec. 3): role subsets are non-strict, so
    a loop merely forces the involved populations to be equal.  Subtype
    links *are* strict — that case is Pattern 9, not this rule.  Every
    subset constraint lying on a loop is flagged at its own site.
    """

    pattern_id = "S2"
    name = "Subset loop"
    description = "A subset constraint lying on a SetPath loop."
    constraint_class = SubsetConstraint
    setcomp_sensitive = True

    def _check_with_graph(
        self, schema: Schema, graph: SetPathGraph, site: SubsetConstraint
    ) -> list[RuleFinding]:
        if not graph.subset_holds(site.sup, site.sub):
            return []
        return [
            RuleFinding(
                rule_id="S2",
                source="RIDL",
                message=(
                    f"subset constraint <{site.label}> lies on a loop; "
                    f"the populations of {site.sub} and {site.sup} "
                    "are forced equal but may be non-empty (not an "
                    "unsatisfiability)"
                ),
                relevant=False,
                elements=site.sub + site.sup,
            )
        ]


#: All formation/RIDL rule checks, in the classic report order.
FORMATION_CHECKS = (
    FrequencyOneCheck(),
    SpanningFrequencyCheck(),
    UniquenessWithFrequencyCheck(),
    SpannedUniquenessCheck(),
    ExclusionOnMandatoryCheck(),
    ExclusionAcrossSubtypingCheck(),
    FrequencyVsCardinalityCheck(),
    SuperfluousSubsetCheck(),
    SuperfluousEqualityCheck(),
    SubsetLoopCheck(),
)


def check_formation_rules(schema: Schema) -> list[RuleFinding]:
    """Run all Halpin [H89] formation rules plus RIDL-A S1–S3 from scratch."""
    findings: list[RuleFinding] = []
    for check in FORMATION_CHECKS:
        findings.extend(check.check(schema))
    return findings
