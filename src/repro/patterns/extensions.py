"""Extension patterns — the paper's Sec. 5 future work, implemented.

The conclusions concede the nine patterns are incomplete and sketch where
to grow them: "E.g., one could demand that for irreflexive roles at least 2
different values need to be present."  This module adds that pattern and
two siblings in the same spirit.  They carry ids ``X1``–``X3`` and are
*disabled by default* (the base engine reproduces the paper's nine); enable
them via ``PatternEngine(include_extensions=True)`` or the validator
settings.

X1 — Ring-Value support
    A ring-constraint combination needs a minimum number of *distinct*
    elements to populate (irreflexivity needs 2; plain symmetry only 1).
    The minimum is computed semantically from the smallest witness relation
    (:func:`repro.rings.algebra.witness`); if the player's value pool is
    smaller, the role pair is unsatisfiable.  This is exactly the paper's
    suggested example, generalized to every combination.

X2 — Empty value pool
    A type whose value constraint lists zero values can never be populated,
    and neither can its subtypes or the roles they play.  (The structural
    advisory W01 warns about the declaration; X2 states the semantic
    consequence as a proper violation.)

X3 — Disjunctive mandatory with all branches excluded
    Pattern 3 only fires on *simple* mandatories (a disjunctive mandatory
    does not force any single role, which is exactly why Fig. 14 is
    satisfiable).  But when **every** branch of a disjunctive mandatory is
    excluded with some simple-mandatory role of the same player, no branch
    remains playable and the player type is unpopulatable — a strictly
    stronger conflict the base nine miss.
"""

from __future__ import annotations

from repro.orm.constraints import MandatoryConstraint
from repro.orm.schema import Schema
from repro.patterns.base import (
    ConstraintSitePattern,
    Pattern,
    RingPairSitePattern,
    Violation,
)
from repro.rings.algebra import format_combination, is_compatible, witness


def minimum_ring_support(kinds: frozenset) -> int | None:
    """Fewest distinct elements any non-empty witness of ``kinds`` uses.

    ``None`` when the combination is incompatible outright (Pattern 8's
    province).  By the substructure argument the 2-element enumeration is
    exact for existence; for the *minimum* it is exact as well because a
    witness restricted to one of its pairs stays a witness.
    """
    if not is_compatible(kinds):
        return None
    best = witness(kinds)
    assert best is not None
    support = {element for pair in best for element in pair}
    return len(support)


class RingValueSupportPattern(RingPairSitePattern):
    """X1: ring constraints demanding more distinct elements than the pool has."""

    pattern_id = "X1"
    name = "Ring-Value support (Sec. 5 extension)"
    description = (
        "A ring combination that can only be satisfied by relations over k "
        "distinct elements is unsatisfiable when the player's value pool has "
        "fewer than k values (e.g. irreflexivity needs 2)."
    )
    players_sensitive = True  # the value pool is inherited from supertypes

    def check_site(self, schema: Schema, site: tuple[str, str]) -> list[Violation]:
        constraints = schema.ring_constraints_on(site)
        kinds = frozenset(constraint.kind for constraint in constraints)
        if not kinds:
            return []
        needed = minimum_ring_support(kinds)
        if needed is None or needed <= 1:
            return []  # incompatible combos are P8's; support-1 is free
        player = schema.role(site[0]).player
        pool = self._effective_pool(schema, player)
        if pool is None or pool >= needed:
            return []
        labels = tuple(constraint.label or "" for constraint in constraints)
        return [
            self._violation(
                message=(
                    f"the ring constraints {format_combination(kinds)} need at "
                    f"least {needed} distinct '{player}' instances to be "
                    f"populated, but its value constraint admits only {pool} "
                    "value(s)"
                ),
                roles=site,
                constraints=labels,
            )
        ]

    @staticmethod
    def _effective_pool(schema: Schema, type_name: str) -> int | None:
        counts = [
            schema.value_count(candidate)
            for candidate in schema.supertypes_and_self(type_name)
            if schema.value_count(candidate) is not None
        ]
        return min(counts, default=None)


class EmptyValuePoolPattern(Pattern):
    """X2: value constraints with zero values empty the type and its roles.

    Check sites are the empty-pool object types.  The violation's element
    list grows and shrinks with the subtree and the facts its members play
    in, so a site is dirty when it appears in the scope's ``graph_types``
    *or* ``member_types`` (which contains the ancestors of every type whose
    role set changed).
    """

    pattern_id = "X2"
    name = "Empty value pool (Sec. 5 extension)"
    description = (
        "A type with an empty value constraint — directly or via a "
        "supertype — can never be populated; nor can its subtypes or roles."
    )

    def iter_sites(self, schema: Schema, scope=None):
        if scope is None:
            names = schema.object_type_names()
        else:
            names = [
                name
                for name in sorted(scope.graph_types | scope.member_types)
                if schema.has_object_type(name)
            ]
        for name in names:
            object_type = schema.object_type(name)
            if object_type.values is not None and len(object_type.values) == 0:
                yield (name, object_type)

    def site_dirty(self, key, scope, schema: Schema) -> bool:
        if not schema.has_object_type(key):
            return True
        return key in scope.graph_types or key in scope.member_types

    def check_site(self, schema: Schema, site) -> list[Violation]:
        doomed_types = tuple(schema.subtypes_and_self(site.name))
        doomed_roles: list[str] = []
        for type_name in doomed_types:
            for role in schema.roles_played_by(type_name):
                fact = schema.fact_type_of(role.name)
                doomed_roles.extend(fact.role_names)
        return [
            self._violation(
                message=(
                    f"object type '{site.name}' has an empty value "
                    f"constraint; it, its subtype(s) and the fact type(s) they "
                    "play in can never be populated"
                ),
                types=doomed_types,
                roles=tuple(dict.fromkeys(doomed_roles)),
            )
        ]


class DisjunctiveMandatoryExclusionPattern(ConstraintSitePattern):
    """X3: a disjunctive mandatory whose every branch is excluded away.

    Check sites are the disjunctive mandatory constraints; exclusions and
    simple mandatories on the branches co-dirty them via the scope's
    constraint closure, and the player subtype test makes the site
    ``players_sensitive``.
    """

    pattern_id = "X3"
    name = "Disjunctive mandatory fully excluded (Sec. 5 extension)"
    description = (
        "If each alternative of a disjunctive mandatory is exclusive with a "
        "simple-mandatory role of the same player, no alternative can be "
        "played and the player type is unpopulatable."
    )
    constraint_class = MandatoryConstraint
    players_sensitive = True

    def check_site(self, schema: Schema, site: MandatoryConstraint) -> list[Violation]:
        if not site.is_disjunctive:
            return []
        simple_mandatory = schema.mandatory_role_names()
        player = schema.role(site.roles[0]).player
        blockers: list[str] = []
        for branch in site.roles:
            blocker = self._blocking_mandatory(schema, branch, player, simple_mandatory)
            if blocker is None:
                return []
            blockers.append(blocker)
        return [
            self._violation(
                message=(
                    f"object type '{player}' cannot be populated: every "
                    f"alternative of the disjunctive mandatory "
                    f"<{site.label}> is excluded with a mandatory "
                    f"role ({', '.join(sorted(set(blockers)))})"
                ),
                types=(player,),
                roles=tuple(
                    role for role in site.roles if schema.role(role).player == player
                ),
                constraints=(site.label or "",),
            )
        ]

    @staticmethod
    def _blocking_mandatory(schema, branch, player, simple_mandatory):
        """A simple-mandatory role of ``player`` (or a supertype) that is
        excluded with ``branch``, or None."""
        from repro.orm.constraints import ExclusionConstraint

        for exclusion in schema.constraints_referencing_role(branch):
            if not isinstance(exclusion, ExclusionConstraint):
                continue
            if not exclusion.is_role_exclusion:
                continue
            roles = exclusion.single_roles()
            for other in roles:
                if other == branch or other not in simple_mandatory:
                    continue
                other_player = schema.role(other).player
                if player in schema.subtypes_and_self(other_player):
                    return other
        return None


#: The extension patterns, in id order.
EXTENSION_PATTERNS: tuple[Pattern, ...] = (
    RingValueSupportPattern(),
    EmptyValuePoolPattern(),
    DisjunctiveMandatoryExclusionPattern(),
)

#: Their ids.
EXTENSION_IDS: tuple[str, ...] = tuple(p.pattern_id for p in EXTENSION_PATTERNS)
