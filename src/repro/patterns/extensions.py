"""Extension patterns — the paper's Sec. 5 future work, implemented.

The conclusions concede the nine patterns are incomplete and sketch where
to grow them: "E.g., one could demand that for irreflexive roles at least 2
different values need to be present."  This module adds that pattern and
two siblings in the same spirit.  They carry ids ``X1``–``X3`` and are
*disabled by default* (the base engine reproduces the paper's nine); enable
them via ``PatternEngine(include_extensions=True)`` or the validator
settings.

X1 — Ring-Value support
    A ring-constraint combination needs a minimum number of *distinct*
    elements to populate (irreflexivity needs 2; plain symmetry only 1).
    The minimum is computed semantically from the smallest witness relation
    (:func:`repro.rings.algebra.witness`); if the player's value pool is
    smaller, the role pair is unsatisfiable.  This is exactly the paper's
    suggested example, generalized to every combination.

X2 — Empty value pool
    A type whose value constraint lists zero values can never be populated,
    and neither can its subtypes or the roles they play.  (The structural
    advisory W01 warns about the declaration; X2 states the semantic
    consequence as a proper violation.)

X3 — Disjunctive mandatory with all branches excluded
    Pattern 3 only fires on *simple* mandatories (a disjunctive mandatory
    does not force any single role, which is exactly why Fig. 14 is
    satisfiable).  But when **every** branch of a disjunctive mandatory is
    excluded with some simple-mandatory role of the same player, no branch
    remains playable and the player type is unpopulatable — a strictly
    stronger conflict the base nine miss.
"""

from __future__ import annotations

from repro.orm.schema import Schema
from repro.patterns.base import Pattern, Violation
from repro.rings.algebra import format_combination, is_compatible, witness


def minimum_ring_support(kinds: frozenset) -> int | None:
    """Fewest distinct elements any non-empty witness of ``kinds`` uses.

    ``None`` when the combination is incompatible outright (Pattern 8's
    province).  By the substructure argument the 2-element enumeration is
    exact for existence; for the *minimum* it is exact as well because a
    witness restricted to one of its pairs stays a witness.
    """
    if not is_compatible(kinds):
        return None
    best = witness(kinds)
    assert best is not None
    support = {element for pair in best for element in pair}
    return len(support)


class RingValueSupportPattern(Pattern):
    """X1: ring constraints demanding more distinct elements than the pool has."""

    pattern_id = "X1"
    name = "Ring-Value support (Sec. 5 extension)"
    description = (
        "A ring combination that can only be satisfied by relations over k "
        "distinct elements is unsatisfiable when the player's value pool has "
        "fewer than k values (e.g. irreflexivity needs 2)."
    )

    def check(self, schema: Schema) -> list[Violation]:
        violations: list[Violation] = []
        for pair in schema.ring_pairs():
            constraints = schema.ring_constraints_on(pair)
            kinds = frozenset(constraint.kind for constraint in constraints)
            needed = minimum_ring_support(kinds)
            if needed is None or needed <= 1:
                continue  # incompatible combos are P8's; support-1 is free
            player = schema.role(pair[0]).player
            pool = self._effective_pool(schema, player)
            if pool is None or pool >= needed:
                continue
            labels = tuple(constraint.label or "" for constraint in constraints)
            violations.append(
                self._violation(
                    message=(
                        f"the ring constraints {format_combination(kinds)} need at "
                        f"least {needed} distinct '{player}' instances to be "
                        f"populated, but its value constraint admits only {pool} "
                        "value(s)"
                    ),
                    roles=pair,
                    constraints=labels,
                )
            )
        return violations

    @staticmethod
    def _effective_pool(schema: Schema, type_name: str) -> int | None:
        counts = [
            schema.value_count(candidate)
            for candidate in schema.supertypes_and_self(type_name)
            if schema.value_count(candidate) is not None
        ]
        return min(counts, default=None)


class EmptyValuePoolPattern(Pattern):
    """X2: value constraints with zero values empty the type and its roles."""

    pattern_id = "X2"
    name = "Empty value pool (Sec. 5 extension)"
    description = (
        "A type with an empty value constraint — directly or via a "
        "supertype — can never be populated; nor can its subtypes or roles."
    )

    def check(self, schema: Schema) -> list[Violation]:
        violations: list[Violation] = []
        for object_type in schema.object_types():
            if object_type.values is None or len(object_type.values) > 0:
                continue
            doomed_types = tuple(schema.subtypes_and_self(object_type.name))
            doomed_roles: list[str] = []
            for type_name in doomed_types:
                for role in schema.roles_played_by(type_name):
                    fact = schema.fact_type_of(role.name)
                    doomed_roles.extend(fact.role_names)
            violations.append(
                self._violation(
                    message=(
                        f"object type '{object_type.name}' has an empty value "
                        f"constraint; it, its subtype(s) and the fact type(s) they "
                        "play in can never be populated"
                    ),
                    types=doomed_types,
                    roles=tuple(dict.fromkeys(doomed_roles)),
                )
            )
        return violations


class DisjunctiveMandatoryExclusionPattern(Pattern):
    """X3: a disjunctive mandatory whose every branch is excluded away."""

    pattern_id = "X3"
    name = "Disjunctive mandatory fully excluded (Sec. 5 extension)"
    description = (
        "If each alternative of a disjunctive mandatory is exclusive with a "
        "simple-mandatory role of the same player, no alternative can be "
        "played and the player type is unpopulatable."
    )

    def check(self, schema: Schema) -> list[Violation]:
        from repro.orm.constraints import ExclusionConstraint, MandatoryConstraint

        violations: list[Violation] = []
        simple_mandatory = schema.mandatory_role_names()
        exclusions = [
            constraint
            for constraint in schema.constraints_of(ExclusionConstraint)
            if constraint.is_role_exclusion
        ]
        for constraint in schema.constraints_of(MandatoryConstraint):
            if not constraint.is_disjunctive:
                continue
            player = schema.role(constraint.roles[0]).player
            blockers: list[str] = []
            for branch in constraint.roles:
                blocker = self._blocking_mandatory(
                    schema, branch, player, simple_mandatory, exclusions
                )
                if blocker is None:
                    blockers = []
                    break
                blockers.append(blocker)
            if blockers:
                violations.append(
                    self._violation(
                        message=(
                            f"object type '{player}' cannot be populated: every "
                            f"alternative of the disjunctive mandatory "
                            f"<{constraint.label}> is excluded with a mandatory "
                            f"role ({', '.join(sorted(set(blockers)))})"
                        ),
                        types=(player,),
                        roles=tuple(
                            role
                            for role in constraint.roles
                            if schema.role(role).player == player
                        ),
                        constraints=(constraint.label or "",),
                    )
                )
        return violations

    @staticmethod
    def _blocking_mandatory(schema, branch, player, simple_mandatory, exclusions):
        """A simple-mandatory role of ``player`` (or a supertype) that is
        excluded with ``branch``, or None."""
        for exclusion in exclusions:
            roles = exclusion.single_roles()
            if branch not in roles:
                continue
            for other in roles:
                if other == branch or other not in simple_mandatory:
                    continue
                other_player = schema.role(other).player
                if player in schema.subtypes_and_self(other_player):
                    return other
        return None


#: The extension patterns, in id order.
EXTENSION_PATTERNS: tuple[Pattern, ...] = (
    RingValueSupportPattern(),
    EmptyValuePoolPattern(),
    DisjunctiveMandatoryExclusionPattern(),
)

#: Their ids.
EXTENSION_IDS: tuple[str, ...] = tuple(p.pattern_id for p in EXTENSION_PATTERNS)
