"""Pattern 9 — Loops in the subtype relation (paper Fig. 13).

ORM subtype populations are *strict* subsets of their supertype populations
[H01].  On a subtype cycle each population would be a strict subset of
itself — impossible for any population, empty or not — so every type on the
cycle is unsatisfiable.  (Contrast with *subset constraints* between roles,
which are non-strict: a subset-constraint loop merely forces equality, which
is why RIDL-A's rule S2 is not an unsatisfiability rule — paper Sec. 3.)

The appendix formulation is ``T ∈ T.Supers``; we additionally group the
affected types by cycle so one diagnostic names the whole loop instead of
emitting one message per member.
"""

from __future__ import annotations

from repro._util import comma_join, stable_sorted_names
from repro.orm.schema import Schema
from repro.patterns.base import Pattern, Violation


class SubtypeLoopPattern(Pattern):
    """Detect cycles in the subtype graph."""

    pattern_id = "P9"
    name = "Loops in subtypes"
    description = (
        "Subtype populations are strict subsets of their supertypes'; a "
        "subtype cycle would make a population a strict subset of itself."
    )

    def check(self, schema: Schema) -> list[Violation]:
        looping = [
            type_name
            for type_name in schema.object_type_names()
            if type_name in schema.supertypes(type_name)
        ]
        violations: list[Violation] = []
        reported: set[str] = set()
        for type_name in looping:
            if type_name in reported:
                continue
            # Every member of this type's cycle component: types that are both
            # above and below it in the subtype graph.
            cycle = {
                other
                for other in schema.supertypes(type_name)
                if type_name in schema.supertypes(other) or other == type_name
            }
            cycle.add(type_name)
            reported.update(cycle)
            names = tuple(stable_sorted_names(cycle))
            violations.append(
                self._violation(
                    message=(
                        f"the subtype(s) {comma_join(names)} form a loop in the "
                        "subtype relation; strict-subset semantics makes every "
                        "type on the loop unsatisfiable"
                    ),
                    types=names,
                )
            )
        return violations
