"""Pattern 9 — Loops in the subtype relation (paper Fig. 13).

ORM subtype populations are *strict* subsets of their supertype populations
[H01].  On a subtype cycle each population would be a strict subset of
itself — impossible for any population, empty or not — so every type on the
cycle is unsatisfiable.  (Contrast with *subset constraints* between roles,
which are non-strict: a subset-constraint loop merely forces equality, which
is why RIDL-A's rule S2 is not an unsatisfiability rule — paper Sec. 3.)

The appendix formulation is ``T ∈ T.Supers``; we additionally group the
affected types by cycle so one diagnostic names the whole loop instead of
emitting one message per member.
"""

from __future__ import annotations

from repro._util import comma_join, stable_sorted_names
from repro.orm.schema import Schema
from repro.patterns.base import Pattern


class SubtypeLoopPattern(Pattern):
    """Detect cycles in the subtype graph.

    The natural check site is a whole cycle (one diagnostic per loop), so
    this pattern overrides :meth:`check_scoped` directly: site keys are the
    frozen cycle-member sets.  Any new cycle necessarily passes through a
    freshly-edited subtype edge, so scoped runs only need to start from the
    scope's vertically-closed ``graph_types``.
    """

    pattern_id = "P9"
    name = "Loops in subtypes"
    description = (
        "Subtype populations are strict subsets of their supertypes'; a "
        "subtype cycle would make a population a strict subset of itself."
    )

    def check_scoped(self, schema: Schema, scope=None):
        if scope is None:
            candidates = schema.object_type_names()
        else:
            candidates = [
                name for name in sorted(scope.graph_types) if schema.has_object_type(name)
            ]
        results = {}
        reported: set[str] = set()
        for type_name in candidates:
            if type_name in reported or type_name not in schema.supertypes(type_name):
                continue
            # Every member of this type's cycle component: types that are both
            # above and below it in the subtype graph.
            cycle = {
                other
                for other in schema.supertypes(type_name)
                if type_name in schema.supertypes(other) or other == type_name
            }
            cycle.add(type_name)
            reported.update(cycle)
            names = tuple(stable_sorted_names(cycle))
            results[frozenset(cycle)] = (
                self._violation(
                    message=(
                        f"the subtype(s) {comma_join(names)} form a loop in the "
                        "subtype relation; strict-subset semantics makes every "
                        "type on the loop unsatisfiable"
                    ),
                    types=names,
                ),
            )
        return results

    def iter_sites(self, schema: Schema, scope=None):  # pragma: no cover - unused
        raise NotImplementedError("SubtypeLoopPattern overrides check_scoped directly")

    def check_site(self, schema: Schema, site):  # pragma: no cover - unused
        raise NotImplementedError("SubtypeLoopPattern overrides check_scoped directly")

    def site_dirty(self, key, scope, schema: Schema) -> bool:
        members = key if isinstance(key, frozenset) else frozenset()
        if any(not schema.has_object_type(name) for name in members):
            return True
        return any(name in scope.graph_types for name in members)
