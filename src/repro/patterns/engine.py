"""The pattern engine: registry, settings and the one-call entry point.

:class:`PatternEngine` mirrors the DogmaModeler Validator Settings window
(paper Fig. 15): each of the nine patterns can be enabled or disabled
individually, and :meth:`PatternEngine.check` runs the enabled ones over a
schema, collecting every violation with its diagnostic message.

The engine is intentionally cheap to construct and stateless across calls —
the paper's whole point is that pattern checking is fast enough to run after
every editing step of an interactive modeling session
(:mod:`repro.tool.session` does exactly that).
"""

from __future__ import annotations

import time
from collections.abc import Iterable

from repro.orm.schema import Schema
from repro.patterns.base import Pattern, ValidationReport, Violation
from repro.patterns.extensions import EXTENSION_IDS, EXTENSION_PATTERNS
from repro.patterns.p1_common_supertype import TopCommonSupertypePattern
from repro.patterns.p2_exclusive_subtypes import ExclusiveSubtypesPattern
from repro.patterns.p3_exclusion_mandatory import ExclusionMandatoryPattern
from repro.patterns.p4_frequency_value import FrequencyValuePattern
from repro.patterns.p5_value_exclusion_frequency import ValueExclusionFrequencyPattern
from repro.patterns.p6_set_comparison import SetComparisonPattern
from repro.patterns.p7_uniqueness_frequency import UniquenessFrequencyPattern
from repro.patterns.p8_ring import RingPattern
from repro.patterns.p9_subtype_loop import SubtypeLoopPattern

#: All nine patterns in the paper's order.
ALL_PATTERNS: tuple[Pattern, ...] = (
    TopCommonSupertypePattern(),
    ExclusiveSubtypesPattern(),
    ExclusionMandatoryPattern(),
    FrequencyValuePattern(),
    ValueExclusionFrequencyPattern(),
    SetComparisonPattern(),
    UniquenessFrequencyPattern(),
    RingPattern(),
    SubtypeLoopPattern(),
)

#: Pattern ids in order, for settings UIs and reports.
PATTERN_IDS: tuple[str, ...] = tuple(pattern.pattern_id for pattern in ALL_PATTERNS)

#: The nine paper patterns plus the Sec. 5 extensions (X1-X3).
FULL_REGISTRY: tuple[Pattern, ...] = ALL_PATTERNS + EXTENSION_PATTERNS

#: Every known id, paper patterns first.
ALL_IDS: tuple[str, ...] = PATTERN_IDS + EXTENSION_IDS


def pattern_by_id(pattern_id: str) -> Pattern:
    """Look up a pattern by id (``"P1"``..``"P9"`` or ``"X1"``..``"X3"``)."""
    for pattern in FULL_REGISTRY:
        if pattern.pattern_id == pattern_id:
            return pattern
    raise KeyError(f"unknown pattern id: {pattern_id!r}")


class PatternEngine:
    """Run a configurable subset of the patterns over schemas.

    By default exactly the paper's nine run; pass
    ``include_extensions=True`` to add the Sec. 5 extension patterns, or an
    explicit ``enabled`` list for full control.
    """

    def __init__(
        self,
        enabled: Iterable[str] | None = None,
        include_extensions: bool = False,
    ) -> None:
        if enabled is None:
            self._enabled = list(PATTERN_IDS)
            if include_extensions:
                self._enabled.extend(EXTENSION_IDS)
        else:
            self._enabled = []
            for pattern_id in enabled:
                pattern_by_id(pattern_id)  # validate eagerly
                if pattern_id not in self._enabled:
                    self._enabled.append(pattern_id)

    @property
    def enabled_ids(self) -> tuple[str, ...]:
        """The pattern ids this engine will run, in registry order."""
        return tuple(pid for pid in ALL_IDS if pid in self._enabled)

    def enable(self, pattern_id: str) -> None:
        """Enable one pattern (idempotent)."""
        pattern_by_id(pattern_id)
        if pattern_id not in self._enabled:
            self._enabled.append(pattern_id)

    def disable(self, pattern_id: str) -> None:
        """Disable one pattern (idempotent)."""
        pattern_by_id(pattern_id)
        if pattern_id in self._enabled:
            self._enabled.remove(pattern_id)

    def enabled_patterns(self) -> tuple[Pattern, ...]:
        """The enabled pattern objects, in registry order."""
        return tuple(p for p in FULL_REGISTRY if p.pattern_id in self._enabled)

    def check(self, schema: Schema, scope=None) -> ValidationReport:
        """Run every enabled pattern and collect the violations.

        ``scope`` (a :class:`repro.patterns.incremental.CheckScope`) limits
        each pattern to its dirty sites; stateful merging across edits is
        :class:`repro.patterns.incremental.IncrementalEngine`'s job.
        """
        started = time.perf_counter()
        violations: list[Violation] = []
        for pattern in self.enabled_patterns():
            violations.extend(pattern.check(schema, scope))
        elapsed = time.perf_counter() - started
        return ValidationReport(
            schema_name=schema.metadata.name,
            violations=violations,
            patterns_run=self.enabled_ids,
            elapsed_seconds=elapsed,
        )

    def check_pattern(self, schema: Schema, pattern_id: str) -> list[Violation]:
        """Run a single pattern regardless of the enabled set."""
        return pattern_by_id(pattern_id).check(schema)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PatternEngine(enabled={list(self.enabled_ids)})"
