"""Pattern 7 — Uniqueness-Frequency conflicts (paper Fig. 10).

A uniqueness constraint on a role says each instance plays it at most once;
a frequency constraint ``FC(min-max)`` with ``min > 1`` on the same role
says each player must play it at least twice.  Nothing can then play the
role.

The paper derives this as the semantically-correct refinement of formation
rules 2 and 3 of [H89] (Sec. 3): ``FC(1-max)`` next to a uniqueness is
merely redundant (*not* unsatisfiable), and a frequency spanning a whole
predicate conflicts with the *implicit* spanning uniqueness of set-valued
predicates whenever ``min > 1``.  Both points are implemented here: the
explicit-uniqueness case and the implicit spanning-uniqueness case.
"""

from __future__ import annotations

from repro.orm.constraints import FrequencyConstraint
from repro.orm.schema import Schema
from repro.patterns.base import ConstraintSitePattern, Violation


class UniquenessFrequencyPattern(ConstraintSitePattern):
    """Detect frequency lower bounds above an (explicit or implied) uniqueness.

    Check sites are frequency constraints; adding or removing a uniqueness
    on the same roles co-dirties them via the scope's constraint closure.
    """

    pattern_id = "P7"
    name = "Uniqueness-Frequency"
    description = (
        "A frequency constraint with lower bound above 1 on a unique role "
        "(or spanning a whole predicate) can never be satisfied."
    )
    constraint_class = FrequencyConstraint

    def check_site(self, schema: Schema, site: FrequencyConstraint) -> list[Violation]:
        if site.min <= 1:
            return []
        explicit = schema.uniqueness_on(site.roles)
        if explicit:
            uniqueness = explicit[0]
            return [
                self._violation(
                    message=(
                        f"the frequency constraint <{site.label}> "
                        f"{site.bounds_text()} cannot be satisfied: the "
                        f"uniqueness constraint <{uniqueness.label}> allows each "
                        f"instance to play {site.roles} at most once"
                    ),
                    roles=site.roles,
                    constraints=(site.label or "", uniqueness.label or ""),
                )
            ]
        if len(site.roles) == 2:
            # Implicit case: a frequency spanning the whole binary
            # predicate counts occurrences of complete tuples, and tuples
            # are unique by set semantics.
            return [
                self._violation(
                    message=(
                        f"the frequency constraint <{site.label}> "
                        f"{site.bounds_text()} spans the whole predicate; "
                        "tuples occur at most once (predicate populations are "
                        "sets), so a lower bound above 1 is unsatisfiable"
                    ),
                    roles=site.roles,
                    constraints=(site.label or "",),
                )
            ]
        return []
