"""Pattern 4 — Frequency-Value conflicts (paper Fig. 5).

A frequency constraint ``FC(n-m)`` on role ``r`` of fact type ``A r B``
demands that every ``A``-instance playing ``r`` does so at least ``n``
times.  Fact populations are sets, so the ``n`` tuples of one instance need
``n`` *distinct* partners from ``B``.  If a value constraint allows ``B``
fewer than ``n`` values, no instance can legally play ``r`` — the role (and
with it the whole fact type) is unsatisfiable.

The appendix algorithm compares ``F[x].min`` against the value-constraint
size of the co-role's object type; this also covers formation rule 7 of
[H89] for the binary case (paper Sec. 3).
"""

from __future__ import annotations

from repro.orm.constraints import FrequencyConstraint
from repro.orm.schema import Schema
from repro.patterns.base import ConstraintSitePattern, Violation


class FrequencyValuePattern(ConstraintSitePattern):
    """Detect frequency constraints exceeding the partner's value pool.

    Check sites are single-role frequency constraints; the partner player's
    inherited value pool makes the site ``players_sensitive`` (a subtype
    edge above the partner can tighten or loosen the pool).
    """

    pattern_id = "P4"
    name = "Frequency-Value"
    description = (
        "A frequency lower bound larger than the number of admissible partner "
        "values makes the role unsatisfiable."
    )
    constraint_class = FrequencyConstraint
    players_sensitive = True

    def check_site(self, schema: Schema, site: FrequencyConstraint) -> list[Violation]:
        if len(site.roles) != 1:
            return []  # spanning frequencies are Pattern 7's business
        role_name = site.roles[0]
        partner = schema.partner_role(role_name)
        pool = self._effective_value_count(schema, partner.player)
        if pool is None or pool >= site.min:
            return []
        fact_name = schema.role(role_name).fact_type
        return [
            self._violation(
                message=(
                    f"role '{role_name}' cannot be instantiated: the frequency "
                    f"constraint <{site.label}> {site.bounds_text()} "
                    f"requires {site.min} distinct '{partner.player}' "
                    f"partners, but its value constraint admits only {pool} "
                    f"value(s); the fact type '{fact_name}' is unpopulatable"
                ),
                roles=(role_name, partner.name),
                constraints=(site.label or "",),
            )
        ]

    @staticmethod
    def _effective_value_count(schema: Schema, type_name: str) -> int | None:
        """The tightest value pool of the type or any of its supertypes.

        A subtype's population lives inside every supertype's population, so
        a value constraint anywhere up the chain bounds the subtype too.
        The paper's algorithm reads the constraint off the played type
        directly; honoring inherited value constraints is a strictly sound
        refinement (documented in DESIGN.md).
        """
        counts = [
            schema.value_count(candidate)
            for candidate in schema.supertypes_and_self(type_name)
        ]
        known = [count for count in counts if count is not None]
        return min(known, default=None)
