"""Site-based well-formedness advisory checks (W01–W07).

These are the structural advisories of :mod:`repro.orm.wellformed`,
decomposed onto the same site triad (``iter_sites`` / ``check_site`` /
``site_dirty``) as the nine unsatisfiability patterns so that
:class:`repro.patterns.incremental.IncrementalEngine` can maintain them
incrementally: each advisory check anchors its findings at a **check
site** — an object type for W01/W07, a constraint for the rest — and only
the sites dirtied by an edit are re-examined, with stored advisories
retracted exactly like pattern violations.

``check_site`` returns :class:`repro.orm.wellformed.Advisory` objects
rather than violations; the shared machinery never looks inside the
findings.  The from-scratch entry point
:func:`repro.orm.wellformed.check_wellformedness` is a thin wrapper over
:data:`WELLFORMED_CHECKS` with ``scope=None``, so there is exactly one
implementation of every advisory.
"""

from __future__ import annotations

from repro._util import comma_join, pairs
from repro.orm.constraints import (
    ExclusionConstraint,
    FrequencyConstraint,
    RingConstraint,
    SubsetConstraint,
    UniquenessConstraint,
)
from repro.orm.elements import ObjectType
from repro.orm.schema import Schema
from repro.orm.wellformed import Advisory
from repro.patterns.base import ConstraintSitePattern, TypeSitePattern


def _players_compatible(schema: Schema, first: str, second: str) -> bool:
    """Two players are compatible when one is (in)directly the other's
    subtype or they share any common supertype."""
    if first == second:
        return True
    first_line = set(schema.supertypes_and_self(first))
    second_line = set(schema.supertypes_and_self(second))
    return bool(first_line & second_line)


class EmptyValueConstraintCheck(TypeSitePattern):
    """W01: an empty value list makes the type trivially unpopulatable."""

    pattern_id = "W01"
    name = "Empty value constraint"
    description = "An empty value constraint makes the type unpopulatable."

    def check_site(self, schema: Schema, site: ObjectType) -> list[Advisory]:
        if site.values is not None and len(site.values) == 0:
            return [
                Advisory(
                    code="W01",
                    message=(
                        f"object type '{site.name}' has an empty value "
                        "constraint; it can never be populated"
                    ),
                    elements=(site.name,),
                )
            ]
        return []


class SpanningUniquenessCheck(ConstraintSitePattern):
    """W02: uniqueness over a whole binary predicate is implied by set
    semantics (Halpin's formation rule 2/4 territory: legal but redundant)."""

    pattern_id = "W02"
    name = "Spanning uniqueness"
    description = "Uniqueness over the whole predicate is implied."
    constraint_class = UniquenessConstraint

    def check_site(self, schema: Schema, site: UniquenessConstraint) -> list[Advisory]:
        if len(site.roles) != 2:
            return []
        return [
            Advisory(
                code="W02",
                message=(
                    f"uniqueness constraint <{site.label}> spans the whole "
                    "predicate; predicate populations are sets, so it is implied"
                ),
                elements=site.roles,
            )
        ]


class RedundantFrequencyCheck(ConstraintSitePattern):
    """W03: FC(1-) says nothing (formation rule 1 prefers uniqueness)."""

    pattern_id = "W03"
    name = "Vacuous frequency"
    description = "FC(1-) constrains nothing."
    constraint_class = FrequencyConstraint

    def check_site(self, schema: Schema, site: FrequencyConstraint) -> list[Advisory]:
        if site.min != 1 or site.max is not None:
            return []
        return [
            Advisory(
                code="W03",
                message=(
                    f"frequency constraint <{site.label}> is FC(1-), which "
                    "is vacuous; drop it or use a uniqueness constraint"
                ),
                elements=site.roles,
            )
        ]


class IncompatibleExclusionPlayersCheck(ConstraintSitePattern):
    """W04: exclusion between roles of unrelated players is vacuous —
    unrelated top-level types are already mutually exclusive in ORM."""

    pattern_id = "W04"
    name = "Exclusion between unrelated players"
    description = "Exclusion between roles of unrelated types is vacuous."
    constraint_class = ExclusionConstraint
    players_sensitive = True

    def check_site(self, schema: Schema, site: ExclusionConstraint) -> list[Advisory]:
        if not site.is_role_exclusion:
            return []
        players = [schema.role(name).player for name in site.single_roles()]
        for first, second in pairs(set(players)):
            if not _players_compatible(schema, first, second):
                return [
                    Advisory(
                        code="W04",
                        message=(
                            f"exclusion <{site.label}> involves roles of "
                            f"unrelated types {comma_join(sorted({first, second}))}; "
                            "unrelated types are disjoint by default, so the "
                            "constraint is vacuous"
                        ),
                        elements=site.single_roles(),
                    )
                ]
        return []


class RingOnUnrelatedPlayersCheck(ConstraintSitePattern):
    """W05: ring constraints need both roles played by compatible types
    ("connected directly to the same object-type ... or indirectly via
    supertypes")."""

    pattern_id = "W05"
    name = "Ring on unrelated players"
    description = "Ring constraints require a shared (super)type."
    constraint_class = RingConstraint
    players_sensitive = True

    def check_site(self, schema: Schema, site: RingConstraint) -> list[Advisory]:
        first = schema.role(site.first_role).player
        second = schema.role(site.second_role).player
        if _players_compatible(schema, first, second):
            return []
        return [
            Advisory(
                code="W05",
                message=(
                    f"ring constraint <{site.label}> spans roles played by "
                    f"unrelated types '{first}' and '{second}'; ring constraints "
                    "require a shared (super)type"
                ),
                elements=site.role_pair,
            )
        ]


class SubsetBetweenUnrelatedPlayersCheck(ConstraintSitePattern):
    """W06: a subset constraint between roles of unrelated types forces the
    sub side empty.  Strictly an unsatisfiability source, but it stems from
    a typing mistake, so it is surfaced as a structural advisory."""

    pattern_id = "W06"
    name = "Subset between unrelated players"
    description = "A subset between roles of unrelated types forces emptiness."
    constraint_class = SubsetConstraint
    players_sensitive = True

    def check_site(self, schema: Schema, site: SubsetConstraint) -> list[Advisory]:
        found = []
        for sub_name, sup_name in zip(site.sub, site.sup):
            sub_player = schema.role(sub_name).player
            sup_player = schema.role(sup_name).player
            if not _players_compatible(schema, sub_player, sup_player):
                found.append(
                    Advisory(
                        code="W06",
                        message=(
                            f"subset constraint <{site.label}> relates roles of "
                            f"unrelated types '{sub_player}' and '{sup_player}'; the "
                            "subset side can then never be populated"
                        ),
                        elements=(sub_name, sup_name),
                    )
                )
        return found


class IsolatedTypeCheck(TypeSitePattern):
    """W07: types playing no role and having no subtype link are likely
    leftovers."""

    pattern_id = "W07"
    name = "Isolated type"
    description = "A type with no roles and no subtype links is disconnected."

    def check_site(self, schema: Schema, site: ObjectType) -> list[Advisory]:
        name = site.name
        plays = schema.roles_played_by(name)
        linked = schema.direct_supertypes(name) or schema.direct_subtypes(name)
        if plays or linked:
            return []
        return [
            Advisory(
                code="W07",
                message=(
                    f"object type '{name}' plays no role and has no subtype "
                    "links; it is disconnected from the schema"
                ),
                elements=(name,),
            )
        ]


#: All advisory checks, in advisory-code order (the classic report order).
WELLFORMED_CHECKS = (
    EmptyValueConstraintCheck(),
    SpanningUniquenessCheck(),
    RedundantFrequencyCheck(),
    IncompatibleExclusionPlayersCheck(),
    RingOnUnrelatedPlayersCheck(),
    SubsetBetweenUnrelatedPlayersCheck(),
    IsolatedTypeCheck(),
)
