"""Unsatisfiability propagation — deriving the full blast radius.

The nine patterns (and the X extensions) report the *direct* victims of a
contradiction.  Unsatisfiability, however, propagates structurally:

* an unpopulatable **role** empties its whole fact type, so the partner
  role is unpopulatable too;
* a role that is *simple-mandatory* on its player and unpopulatable makes
  the **player type** unpopulatable (its instances would have to play it);
* an unpopulatable **type** dooms all its subtypes and every role they are
  the player of;
* a SetPath ``s ⊆ ... ⊆ r`` into an unpopulatable role ``r`` forces ``s``
  empty as well (monotonicity of subset constraints).

:func:`propagate` computes the least fixpoint of these rules starting from
a :class:`repro.patterns.base.ValidationReport`, returning the derived
elements with one-line justifications.  This is the "extend our approach"
direction of the paper's Sec. 5, and the soundness of every rule is covered
by the property tests (a derived element is never populatable according to
the bounded model finder).

Joint violations (Pattern 5) do not seed the fixpoint: their roles are only
*jointly* doomed, and propagation needs individually-empty elements.

:class:`IncrementalPropagator` maintains the same fixpoint *across edits*
for :class:`repro.patterns.incremental.IncrementalEngine`: every derived
element carries a single-premise justification, so when seed violations
retract or the relevant schema structure moves (a
:class:`~repro.patterns.incremental.CheckScope` names the dirty roles,
types and SetPath components), only the affected cone is deleted and
re-derived (DRed-style: over-delete along justification edges, re-ground
survivors, then run the semi-naive closure from the dirty frontier).  The
cumulative result always equals a from-scratch :func:`propagate` as sets of
unsatisfiable elements (property-tested in
``tests/patterns/test_incremental.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.orm.schema import Schema
from repro.patterns.base import ValidationReport
from repro.setcomp import SetPathComponents, SetPathGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.patterns.incremental import CheckScope

#: A propagation fact: ``("role", name)`` or ``("type", name)``.
Fact = tuple[str, str]
#: ``(rule, premise fact or None, one-line justification)``.
Justification = tuple[str, "Fact | None", str]


@dataclass(frozen=True)
class DerivedUnsat:
    """One element proven unsatisfiable by propagation."""

    element: str
    kind: str  # "role" | "type"
    via: str  # one-line justification


@dataclass
class PropagationResult:
    """Direct plus derived unsatisfiable elements."""

    direct_roles: tuple[str, ...]
    direct_types: tuple[str, ...]
    derived: list[DerivedUnsat] = field(default_factory=list)

    def all_unsat_roles(self) -> set[str]:
        """Direct and derived unsatisfiable roles."""
        return set(self.direct_roles) | {
            item.element for item in self.derived if item.kind == "role"
        }

    def all_unsat_types(self) -> set[str]:
        """Direct and derived unsatisfiable types."""
        return set(self.direct_types) | {
            item.element for item in self.derived if item.kind == "type"
        }

    def summary(self) -> str:
        """One line for reports."""
        return (
            f"{len(self.direct_roles)}+{len(self.direct_types)} direct, "
            f"{len(self.derived)} derived unsatisfiable element(s)"
        )


def propagate(schema: Schema, report: ValidationReport) -> PropagationResult:
    """Close the report's findings under the structural propagation rules."""
    direct_roles: set[str] = set()
    direct_types: set[str] = set()
    for violation in report.violations:
        if violation.joint:
            continue  # jointly-doomed roles are not individually empty
        direct_roles.update(violation.roles)
        direct_types.update(violation.types)

    result = PropagationResult(
        direct_roles=tuple(sorted(direct_roles)),
        direct_types=tuple(sorted(direct_types)),
    )
    unsat_roles = set(direct_roles)
    unsat_types = set(direct_types)
    graph = SetPathGraph.from_schema(schema)
    mandatory = schema.mandatory_role_names()

    changed = True
    while changed:
        changed = False
        changed |= _partner_roles(schema, unsat_roles, result)
        changed |= _mandatory_players(schema, unsat_roles, unsat_types, mandatory, result)
        changed |= _subtypes_of_unsat(schema, unsat_types, result)
        changed |= _roles_of_unsat_players(schema, unsat_types, unsat_roles, result)
        changed |= _setpaths_into_unsat(schema, graph, unsat_roles, result)
    return result


def _add(result, pool, element, kind, via) -> bool:
    if element in pool:
        return False
    pool.add(element)
    result.derived.append(DerivedUnsat(element, kind, via))
    return True


def _partner_roles(schema, unsat_roles, result) -> bool:
    changed = False
    for role_name in list(unsat_roles):
        partner = schema.partner_role(role_name).name
        changed |= _add(
            result,
            unsat_roles,
            partner,
            "role",
            f"fact type of unsatisfiable role '{role_name}' has no tuples",
        )
    return changed


def _mandatory_players(schema, unsat_roles, unsat_types, mandatory, result) -> bool:
    changed = False
    for role_name in list(unsat_roles):
        if role_name not in mandatory:
            continue
        player = schema.role(role_name).player
        changed |= _add(
            result,
            unsat_types,
            player,
            "type",
            f"its mandatory role '{role_name}' can never be played",
        )
    return changed


def _subtypes_of_unsat(schema, unsat_types, result) -> bool:
    changed = False
    for type_name in list(unsat_types):
        for sub in schema.subtypes(type_name):
            changed |= _add(
                result,
                unsat_types,
                sub,
                "type",
                f"subtype of unsatisfiable type '{type_name}'",
            )
    return changed


def _roles_of_unsat_players(schema, unsat_types, unsat_roles, result) -> bool:
    changed = False
    for type_name in list(unsat_types):
        for role in schema.roles_played_by(type_name):
            changed |= _add(
                result,
                unsat_roles,
                role.name,
                "role",
                f"played by unsatisfiable type '{type_name}'",
            )
    return changed


def _setpaths_into_unsat(schema, graph, unsat_roles, result) -> bool:
    changed = False
    for candidate in schema.role_names():
        if candidate in unsat_roles:
            continue
        for target in list(unsat_roles):
            if candidate == target:
                continue
            if graph.subset_holds((candidate,), (target,)):
                changed |= _add(
                    result,
                    unsat_roles,
                    candidate,
                    "role",
                    f"subset path into unsatisfiable role '{target}'",
                )
                break
    return changed


class IncrementalPropagator:
    """Maintain the propagation fixpoint incrementally across schema edits.

    Every fact (an unsatisfiable role or type) stores one justification:
    either ``"seed"`` (it appears in a current non-joint violation) or a
    rule application from a single premise fact.  On :meth:`refresh`:

    1. **over-delete** — facts whose justification became invalid (seed
       retracted, element vanished, or the rule's schema dependency lies in
       the dirty scope) are removed, cascading along justification edges;
    2. **re-ground** — each deleted fact is re-derived immediately if some
       *surviving* fact still justifies it (a deleted fact may have had
       alternative derivations);
    3. **semi-naive closure** — forward rule application runs from the new
       seeds, the re-grounded facts, and every surviving fact whose
       outgoing rule applications may have changed (its role is in
       ``scope.roles``, its type in the vertical closures, or its SetPath
       component was touched).

    Survivor justifications are acyclic and grounded in live seeds, so no
    phantom cycles can keep facts alive — the state after every refresh
    equals a from-scratch :func:`propagate` as sets of elements.
    """

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._seed_roles: frozenset[str] = frozenset()
        self._seed_types: frozenset[str] = frozenset()
        self._just: dict[Fact, Justification] = {}
        self._dependents: dict[Fact, set[Fact]] = {}
        self._graph: SetPathGraph | None = None
        self._components: SetPathComponents | None = None

    # -- public API -----------------------------------------------------

    def rebuild(self, report: ValidationReport) -> None:
        """Recompute the whole fixpoint from scratch for ``report``."""
        self._seed_roles, self._seed_types = self._seeds_of(report)
        self._just = {}
        self._dependents = {}
        self._graph = None
        self._components = None
        work: list[Fact] = []
        for fact in self._seed_facts():
            self._just[fact] = ("seed", None, "")
            work.append(fact)
        self._close(work)

    def refresh(self, scope: "CheckScope", report: ValidationReport) -> None:
        """Consume one dirty scope plus the post-edit report."""
        schema = self.schema
        if scope.setcomp_dirty:
            self._graph = None
            self._components = None
        self._seed_roles, self._seed_types = self._seeds_of(report)
        setcomp_dirty = scope.setcomp_closure(schema)

        # 1. over-delete facts whose justification may no longer hold.
        suspects = [
            fact
            for fact, justification in self._just.items()
            if self._justification_invalid(fact, justification, scope, setcomp_dirty)
        ]
        deleted = self._cascade_delete(suspects)

        # 2. (re-)insert seeds, then re-ground deleted facts from survivors.
        work: list[Fact] = []
        for fact in self._seed_facts():
            if fact not in self._just:
                work.append(fact)
            self._just[fact] = ("seed", None, "")
        for fact in sorted(deleted):
            if fact in self._just or not self._exists(fact):
                continue
            justification = self._backward(fact)
            if justification is not None:
                self._insert(fact, justification)
                work.append(fact)

        # 3. forward closure from the dirty frontier.
        for fact in self._just:
            kind, element = fact
            if kind == "role" and (element in scope.roles or element in setcomp_dirty):
                work.append(fact)
            elif kind == "type" and (
                element in scope.graph_types or element in scope.member_types
            ):
                work.append(fact)
        self._close(work)

    def result(self) -> PropagationResult:
        """The current fixpoint as a :class:`PropagationResult`."""
        derived = [
            DerivedUnsat(element, kind, via)
            for (kind, element), (rule, _premise, via) in self._just.items()
            if rule != "seed"
        ]
        derived.sort(key=lambda item: (item.kind, item.element, item.via))
        return PropagationResult(
            direct_roles=tuple(sorted(self._seed_roles)),
            direct_types=tuple(sorted(self._seed_types)),
            derived=derived,
        )

    # -- seed handling ---------------------------------------------------

    @staticmethod
    def _seeds_of(report: ValidationReport) -> tuple[frozenset[str], frozenset[str]]:
        roles: set[str] = set()
        types: set[str] = set()
        for violation in report.violations:
            if violation.joint:
                continue  # jointly-doomed roles are not individually empty
            roles.update(violation.roles)
            types.update(violation.types)
        return frozenset(roles), frozenset(types)

    def _seed_facts(self) -> list[Fact]:
        return [("role", name) for name in sorted(self._seed_roles)] + [
            ("type", name) for name in sorted(self._seed_types)
        ]

    # -- deletion --------------------------------------------------------

    def _justification_invalid(
        self,
        fact: Fact,
        justification: Justification,
        scope: "CheckScope",
        setcomp_dirty: frozenset[str],
    ) -> bool:
        rule, premise, _via = justification
        if not self._exists(fact):
            return True
        if rule == "seed":
            kind, element = fact
            pool = self._seed_roles if kind == "role" else self._seed_types
            return element not in pool
        if premise is not None and not self._exists(premise):
            return True
        if rule == "mandatory":
            # the premise role's mandatory constraint may have been removed
            return premise is not None and premise[1] in scope.roles
        if rule == "subtype":
            # the premise→fact subtype link may have been removed
            return fact[1] in scope.graph_types or (
                premise is not None and premise[1] in scope.graph_types
            )
        if rule == "setpath":
            # the path from fact to premise may have been cut
            return fact[1] in setcomp_dirty or (
                premise is not None and premise[1] in setcomp_dirty
            )
        # "partner" and "played_by" depend only on element existence.
        return False

    def _cascade_delete(self, suspects: list[Fact]) -> set[Fact]:
        deleted: set[Fact] = set()
        stack = list(suspects)
        while stack:
            fact = stack.pop()
            if fact not in self._just:
                continue
            del self._just[fact]
            deleted.add(fact)
            for dependent in self._dependents.pop(fact, ()):
                justification = self._just.get(dependent)
                # guard against stale dependency edges: only cascade when
                # the dependent is still justified by the deleted fact
                if justification is not None and justification[1] == fact:
                    stack.append(dependent)
        return deleted

    # -- derivation ------------------------------------------------------

    def _insert(self, fact: Fact, justification: Justification) -> None:
        self._just[fact] = justification
        premise = justification[1]
        if premise is not None:
            self._dependents.setdefault(premise, set()).add(fact)

    def _close(self, work: list[Fact]) -> None:
        while work:
            fact = work.pop()
            if fact not in self._just:
                continue
            for target, rule, via in self._forward(fact):
                if target not in self._just:
                    self._insert(target, (rule, fact, via))
                    work.append(target)

    def _forward(self, fact: Fact) -> list[tuple[Fact, str, str]]:
        """All rule applications with ``fact`` as the premise."""
        schema = self.schema
        kind, element = fact
        out: list[tuple[Fact, str, str]] = []
        if kind == "role":
            if not schema.has_role(element):
                return out
            partner = schema.partner_role(element).name
            out.append(
                (
                    ("role", partner),
                    "partner",
                    f"fact type of unsatisfiable role '{element}' has no tuples",
                )
            )
            if schema.is_role_mandatory(element):
                out.append(
                    (
                        ("type", schema.role(element).player),
                        "mandatory",
                        f"its mandatory role '{element}' can never be played",
                    )
                )
            for candidate in sorted(self._setpath_components().members_of([element])):
                if candidate == element or not schema.has_role(candidate):
                    continue
                if self._setpath_graph().subset_holds((candidate,), (element,)):
                    out.append(
                        (
                            ("role", candidate),
                            "setpath",
                            f"subset path into unsatisfiable role '{element}'",
                        )
                    )
        else:
            if not schema.has_object_type(element):
                return out
            for sub in schema.direct_subtypes(element):
                out.append(
                    (
                        ("type", sub),
                        "subtype",
                        f"subtype of unsatisfiable type '{element}'",
                    )
                )
            for role in schema.roles_played_by(element):
                out.append(
                    (
                        ("role", role.name),
                        "played_by",
                        f"played by unsatisfiable type '{element}'",
                    )
                )
        return out

    def _backward(self, fact: Fact) -> Justification | None:
        """Find any justification of ``fact`` among the surviving facts."""
        schema = self.schema
        kind, element = fact
        if kind == "role":
            partner = schema.partner_role(element).name
            if ("role", partner) in self._just:
                return (
                    "partner",
                    ("role", partner),
                    f"fact type of unsatisfiable role '{partner}' has no tuples",
                )
            player = schema.role(element).player
            if ("type", player) in self._just:
                return (
                    "played_by",
                    ("type", player),
                    f"played by unsatisfiable type '{player}'",
                )
            for target in sorted(self._setpath_components().members_of([element])):
                if target == element or ("role", target) not in self._just:
                    continue
                if self._setpath_graph().subset_holds((element,), (target,)):
                    return (
                        "setpath",
                        ("role", target),
                        f"subset path into unsatisfiable role '{target}'",
                    )
            return None
        for super_name in schema.direct_supertypes(element):
            if ("type", super_name) in self._just:
                return (
                    "subtype",
                    ("type", super_name),
                    f"subtype of unsatisfiable type '{super_name}'",
                )
        for role in schema.roles_played_by(element):
            if schema.is_role_mandatory(role.name) and ("role", role.name) in self._just:
                return (
                    "mandatory",
                    ("role", role.name),
                    f"its mandatory role '{role.name}' can never be played",
                )
        return None

    # -- caches ----------------------------------------------------------

    def _exists(self, fact: Fact) -> bool:
        kind, element = fact
        if kind == "role":
            return self.schema.has_role(element)
        return self.schema.has_object_type(element)

    def _setpath_graph(self) -> SetPathGraph:
        if self._graph is None:
            self._graph = SetPathGraph.from_schema(self.schema)
        return self._graph

    def _setpath_components(self) -> SetPathComponents:
        if self._components is None:
            self._components = SetPathComponents.from_schema(self.schema)
        return self._components

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IncrementalPropagator(schema={self.schema.metadata.name!r}, "
            f"facts={len(self._just)})"
        )
