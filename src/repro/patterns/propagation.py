"""Unsatisfiability propagation — deriving the full blast radius.

The nine patterns (and the X extensions) report the *direct* victims of a
contradiction.  Unsatisfiability, however, propagates structurally:

* an unpopulatable **role** empties its whole fact type, so the partner
  role is unpopulatable too;
* a role that is *simple-mandatory* on its player and unpopulatable makes
  the **player type** unpopulatable (its instances would have to play it);
* an unpopulatable **type** dooms all its subtypes and every role they are
  the player of;
* a SetPath ``s ⊆ ... ⊆ r`` into an unpopulatable role ``r`` forces ``s``
  empty as well (monotonicity of subset constraints).

:func:`propagate` computes the least fixpoint of these rules starting from
a :class:`repro.patterns.base.ValidationReport`, returning the derived
elements with one-line justifications.  This is the "extend our approach"
direction of the paper's Sec. 5, and the soundness of every rule is covered
by the property tests (a derived element is never populatable according to
the bounded model finder).

Joint violations (Pattern 5) do not seed the fixpoint: their roles are only
*jointly* doomed, and propagation needs individually-empty elements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.orm.schema import Schema
from repro.patterns.base import ValidationReport
from repro.setcomp import SetPathGraph


@dataclass(frozen=True)
class DerivedUnsat:
    """One element proven unsatisfiable by propagation."""

    element: str
    kind: str  # "role" | "type"
    via: str  # one-line justification


@dataclass
class PropagationResult:
    """Direct plus derived unsatisfiable elements."""

    direct_roles: tuple[str, ...]
    direct_types: tuple[str, ...]
    derived: list[DerivedUnsat] = field(default_factory=list)

    def all_unsat_roles(self) -> set[str]:
        """Direct and derived unsatisfiable roles."""
        return set(self.direct_roles) | {
            item.element for item in self.derived if item.kind == "role"
        }

    def all_unsat_types(self) -> set[str]:
        """Direct and derived unsatisfiable types."""
        return set(self.direct_types) | {
            item.element for item in self.derived if item.kind == "type"
        }

    def summary(self) -> str:
        """One line for reports."""
        return (
            f"{len(self.direct_roles)}+{len(self.direct_types)} direct, "
            f"{len(self.derived)} derived unsatisfiable element(s)"
        )


def propagate(schema: Schema, report: ValidationReport) -> PropagationResult:
    """Close the report's findings under the structural propagation rules."""
    direct_roles: set[str] = set()
    direct_types: set[str] = set()
    for violation in report.violations:
        if violation.joint:
            continue  # jointly-doomed roles are not individually empty
        direct_roles.update(violation.roles)
        direct_types.update(violation.types)

    result = PropagationResult(
        direct_roles=tuple(sorted(direct_roles)),
        direct_types=tuple(sorted(direct_types)),
    )
    unsat_roles = set(direct_roles)
    unsat_types = set(direct_types)
    graph = SetPathGraph.from_schema(schema)
    mandatory = schema.mandatory_role_names()

    changed = True
    while changed:
        changed = False
        changed |= _partner_roles(schema, unsat_roles, result)
        changed |= _mandatory_players(schema, unsat_roles, unsat_types, mandatory, result)
        changed |= _subtypes_of_unsat(schema, unsat_types, result)
        changed |= _roles_of_unsat_players(schema, unsat_types, unsat_roles, result)
        changed |= _setpaths_into_unsat(schema, graph, unsat_roles, result)
    return result


def _add(result, pool, element, kind, via) -> bool:
    if element in pool:
        return False
    pool.add(element)
    result.derived.append(DerivedUnsat(element, kind, via))
    return True


def _partner_roles(schema, unsat_roles, result) -> bool:
    changed = False
    for role_name in list(unsat_roles):
        partner = schema.partner_role(role_name).name
        changed |= _add(
            result,
            unsat_roles,
            partner,
            "role",
            f"fact type of unsatisfiable role '{role_name}' has no tuples",
        )
    return changed


def _mandatory_players(schema, unsat_roles, unsat_types, mandatory, result) -> bool:
    changed = False
    for role_name in list(unsat_roles):
        if role_name not in mandatory:
            continue
        player = schema.role(role_name).player
        changed |= _add(
            result,
            unsat_types,
            player,
            "type",
            f"its mandatory role '{role_name}' can never be played",
        )
    return changed


def _subtypes_of_unsat(schema, unsat_types, result) -> bool:
    changed = False
    for type_name in list(unsat_types):
        for sub in schema.subtypes(type_name):
            changed |= _add(
                result,
                unsat_types,
                sub,
                "type",
                f"subtype of unsatisfiable type '{type_name}'",
            )
    return changed


def _roles_of_unsat_players(schema, unsat_types, unsat_roles, result) -> bool:
    changed = False
    for type_name in list(unsat_types):
        for role in schema.roles_played_by(type_name):
            changed |= _add(
                result,
                unsat_roles,
                role.name,
                "role",
                f"played by unsatisfiable type '{type_name}'",
            )
    return changed


def _setpaths_into_unsat(schema, graph, unsat_roles, result) -> bool:
    changed = False
    for candidate in schema.role_names():
        if candidate in unsat_roles:
            continue
        for target in list(unsat_roles):
            if candidate == target:
                continue
            if graph.subset_holds((candidate,), (target,)):
                changed |= _add(
                    result,
                    unsat_roles,
                    candidate,
                    "role",
                    f"subset path into unsatisfiable role '{target}'",
                )
                break
    return changed
