"""Pattern infrastructure: violations, reports, and the pattern interface.

Each of the paper's nine patterns becomes a :class:`Pattern` subclass whose
:meth:`Pattern.check` returns :class:`Violation` objects.  A violation names
the unsatisfiable roles and object types, the constraints that jointly cause
the contradiction, and carries a DogmaModeler-style explanatory message —
the paper stresses (Sec. 4) that the tool "does not only detect unsatisfiable
ORM models, but also ... gives details about the detected problems".
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.orm.schema import Schema


@dataclass(frozen=True)
class Violation:
    """One detected unsatisfiability.

    Attributes
    ----------
    pattern_id:
        Stable id ``"P1"`` .. ``"P9"`` matching the paper's numbering.
    message:
        Human-readable diagnostic naming the conflicting constraints.
    roles:
        Role names that can never be populated because of this conflict.
    types:
        Object-type names that can never be populated.
    constraints:
        Labels of the constraints jointly responsible.
    joint:
        When True, the listed roles cannot all be populated *together* but
        each may be populatable alone (Pattern 5's "some roles in R cannot
        be satisfied"); when False each listed element is individually
        unpopulatable.
    """

    pattern_id: str
    message: str
    roles: tuple[str, ...] = ()
    types: tuple[str, ...] = ()
    constraints: tuple[str, ...] = ()
    joint: bool = False

    def elements(self) -> tuple[str, ...]:
        """All unsatisfiable elements (types then roles)."""
        return self.types + self.roles

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.pattern_id}] {self.message}"


class Pattern(abc.ABC):
    """Interface of one unsatisfiability-detection pattern.

    Subclasses set the three class attributes and implement :meth:`check`.
    Patterns are stateless; a single instance may be reused across schemas
    and threads.
    """

    #: Stable identifier, e.g. ``"P4"``.
    pattern_id: str = ""
    #: The paper's pattern title, e.g. ``"Frequency-Value"``.
    name: str = ""
    #: One-line description for tool settings (Fig. 15).
    description: str = ""

    @abc.abstractmethod
    def check(self, schema: Schema) -> list[Violation]:
        """Return all violations of this pattern present in ``schema``."""

    def _violation(
        self,
        message: str,
        roles: tuple[str, ...] = (),
        types: tuple[str, ...] = (),
        constraints: tuple[str, ...] = (),
        joint: bool = False,
    ) -> Violation:
        """Construct a violation tagged with this pattern's id."""
        return Violation(
            pattern_id=self.pattern_id,
            message=message,
            roles=roles,
            types=types,
            constraints=constraints,
            joint=joint,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.pattern_id}: {self.name})"


@dataclass
class ValidationReport:
    """The outcome of running a set of patterns over a schema."""

    schema_name: str
    violations: list[Violation] = field(default_factory=list)
    patterns_run: tuple[str, ...] = ()
    elapsed_seconds: float = 0.0

    @property
    def is_satisfiable(self) -> bool:
        """True when no pattern fired.

        The patterns are sound but incomplete (paper Sec. 1): ``True`` here
        means "no *common* contradiction found", not a proof of strong
        satisfiability.
        """
        return not self.violations

    def unsatisfiable_roles(self) -> tuple[str, ...]:
        """All role names flagged by any violation, deduplicated."""
        seen: dict[str, None] = {}
        for violation in self.violations:
            for role in violation.roles:
                seen.setdefault(role)
        return tuple(seen)

    def unsatisfiable_types(self) -> tuple[str, ...]:
        """All object-type names flagged by any violation, deduplicated."""
        seen: dict[str, None] = {}
        for violation in self.violations:
            for type_name in violation.types:
                seen.setdefault(type_name)
        return tuple(seen)

    def by_pattern(self) -> dict[str, list[Violation]]:
        """Violations grouped by pattern id (only patterns that fired)."""
        grouped: dict[str, list[Violation]] = {}
        for violation in self.violations:
            grouped.setdefault(violation.pattern_id, []).append(violation)
        return grouped

    def messages(self) -> list[str]:
        """All diagnostic messages, prefixed with their pattern id."""
        return [str(violation) for violation in self.violations]

    def summary(self) -> str:
        """One line for logs/UIs: verdict plus counts."""
        if self.is_satisfiable:
            return (
                f"schema '{self.schema_name}': no unsatisfiability pattern fired "
                f"({len(self.patterns_run)} patterns checked)"
            )
        fired = sorted(self.by_pattern())
        return (
            f"schema '{self.schema_name}': {len(self.violations)} violation(s) "
            f"from pattern(s) {', '.join(fired)}; "
            f"{len(self.unsatisfiable_types())} type(s) and "
            f"{len(self.unsatisfiable_roles())} role(s) unsatisfiable"
        )
