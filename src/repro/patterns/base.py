"""Pattern infrastructure: violations, reports, and the pattern interface.

Each of the paper's nine patterns becomes a :class:`Pattern` subclass whose
:meth:`Pattern.check` returns :class:`Violation` objects.  A violation names
the unsatisfiable roles and object types, the constraints that jointly cause
the contradiction, and carries a DogmaModeler-style explanatory message —
the paper stresses (Sec. 4) that the tool "does not only detect unsatisfiable
ORM models, but also ... gives details about the detected problems".

Site-based checking
-------------------
Every pattern decomposes its work into independent **check sites** — the
schema elements its outer loop visits (an object type for Pattern 1, an
exclusion constraint for Pattern 3, a ring role-pair for Pattern 8, ...).
The site decomposition is what makes *incremental* validation possible:

* :meth:`Pattern.iter_sites` enumerates ``(site_key, site)`` pairs, either
  for the whole schema (``scope=None``) or restricted to the sites a
  :class:`repro.patterns.incremental.CheckScope` marks as dirty;
* :meth:`Pattern.check_site` produces the violations of one site;
* :meth:`Pattern.site_dirty` decides whether a previously-checked site key
  must be retracted and re-examined under a scope.

The contract between the three (relied on by
:class:`repro.patterns.incremental.IncrementalEngine`) is:

1. a site's verdict can only change when ``site_dirty`` says so, and
2. every *existing* dirty site is enumerated by ``iter_sites`` under that
   scope (vanished sites are covered by ``site_dirty`` returning True).

``Pattern.check(schema)`` — the historical full-schema entry point — is the
degenerate case ``scope=None`` and behaves exactly as before.

The site triad is deliberately finding-type agnostic: the same interface
drives the nine unsatisfiability patterns (findings are
:class:`Violation`), the structural well-formedness advisories
(:mod:`repro.patterns.advisories`, findings are
:class:`repro.orm.wellformed.Advisory`) and the formation-rule analysis
(:mod:`repro.patterns.formation_rules`, findings are
:class:`~repro.patterns.formation_rules.RuleFinding`).  One
:class:`repro.patterns.incremental.IncrementalEngine` maintains the
per-site stores of every enabled analysis family from a single journal
drain.
"""

from __future__ import annotations

import abc
from collections.abc import Hashable, Iterator
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.orm.constraints import AnyConstraint, RingConstraint
from repro.orm.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.patterns.incremental import CheckScope


@dataclass(frozen=True)
class Violation:
    """One detected unsatisfiability.

    Attributes
    ----------
    pattern_id:
        Stable id ``"P1"`` .. ``"P9"`` matching the paper's numbering.
    message:
        Human-readable diagnostic naming the conflicting constraints.
    roles:
        Role names that can never be populated because of this conflict.
    types:
        Object-type names that can never be populated.
    constraints:
        Labels of the constraints jointly responsible.
    joint:
        When True, the listed roles cannot all be populated *together* but
        each may be populatable alone (Pattern 5's "some roles in R cannot
        be satisfied"); when False each listed element is individually
        unpopulatable.
    """

    pattern_id: str
    message: str
    roles: tuple[str, ...] = ()
    types: tuple[str, ...] = ()
    constraints: tuple[str, ...] = ()
    joint: bool = False

    def elements(self) -> tuple[str, ...]:
        """All unsatisfiable elements (types then roles)."""
        return self.types + self.roles

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.pattern_id}] {self.message}"


class Pattern(abc.ABC):
    """Interface of one unsatisfiability-detection pattern.

    Subclasses set the three class attributes and implement the site
    triad (:meth:`iter_sites` / :meth:`check_site` / :meth:`site_dirty`),
    usually via one of the mixin bases below.  Patterns are stateless; a
    single instance may be reused across schemas and threads.
    """

    #: Stable identifier, e.g. ``"P4"``.
    pattern_id: str = ""
    #: The paper's pattern title, e.g. ``"Frequency-Value"``.
    name: str = ""
    #: One-line description for tool settings (Fig. 15).
    description: str = ""

    def check(self, schema: Schema, scope: "CheckScope | None" = None) -> list[Violation]:
        """Return all violations of this pattern present in ``schema``.

        With ``scope=None`` the whole schema is examined (the classic
        behavior); with a :class:`CheckScope` only the dirty sites are.
        """
        found: list[Violation] = []
        for violations in self.check_scoped(schema, scope).values():
            found.extend(violations)
        return found

    def check_scoped(
        self, schema: Schema, scope: "CheckScope | None" = None
    ) -> dict[Hashable, tuple[Violation, ...]]:
        """Check the (in-scope) sites, keyed by site; empty sites omitted."""
        results: dict[Hashable, tuple[Violation, ...]] = {}
        for key, site in self.iter_sites(schema, scope):
            found = self.check_site(schema, site)
            if found:
                results[key] = tuple(found)
        return results

    @abc.abstractmethod
    def iter_sites(
        self, schema: Schema, scope: "CheckScope | None" = None
    ) -> Iterator[tuple[Hashable, Any]]:
        """Yield ``(site_key, site)`` pairs to examine under ``scope``."""

    @abc.abstractmethod
    def check_site(self, schema: Schema, site: Any) -> list[Violation]:
        """Return the violations of one site."""

    @abc.abstractmethod
    def site_dirty(self, key: Hashable, scope: "CheckScope", schema: Schema) -> bool:
        """Must a previously-stored site key be retracted under ``scope``?

        True also when the site no longer exists in the schema.
        """

    def _violation(
        self,
        message: str,
        roles: tuple[str, ...] = (),
        types: tuple[str, ...] = (),
        constraints: tuple[str, ...] = (),
        joint: bool = False,
    ) -> Violation:
        """Construct a violation tagged with this pattern's id."""
        return Violation(
            pattern_id=self.pattern_id,
            message=message,
            roles=roles,
            types=types,
            constraints=constraints,
            joint=joint,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.pattern_id}: {self.name})"


class ConstraintSitePattern(Pattern):
    """Base for patterns whose sites are constraints of one class.

    Class attributes tune the dirtiness rules:

    ``players_sensitive``
        the verdict also depends on the *players* of the referenced roles
        (their subtype closure or inherited value pools), so a subtype-graph
        change near a player dirties the site;
    ``setcomp_sensitive``
        the verdict depends on the subset/equality graph (Pattern 6, the
        RIDL rules); a set-comparison change dirties exactly the sites
        whose roles live in a touched connected component of that graph
        (:meth:`repro.patterns.incremental.CheckScope.setcomp_closure`).
    """

    constraint_class: type = AnyConstraint  # overridden by subclasses
    players_sensitive: bool = False
    setcomp_sensitive: bool = False

    def iter_sites(
        self, schema: Schema, scope: "CheckScope | None" = None
    ) -> Iterator[tuple[Hashable, Any]]:
        if scope is None:
            for constraint in schema.constraints_of(self.constraint_class):
                yield (constraint.label, constraint)
            return
        seen: set[Hashable] = set()
        for constraint in scope.candidate_constraints(schema):
            if isinstance(constraint, self.constraint_class):
                seen.add(constraint.label)
                yield (constraint.label, constraint)
        if self.setcomp_sensitive and scope.setcomp_dirty:
            # Sites in a touched SetPath component, via the role index.
            for role_name in sorted(scope.setcomp_closure(schema)):
                if not schema.has_role(role_name):
                    continue
                for constraint in schema.constraints_referencing_role(role_name):
                    if (
                        isinstance(constraint, self.constraint_class)
                        and constraint.label not in seen
                    ):
                        seen.add(constraint.label)
                        yield (constraint.label, constraint)

    def site_dirty(self, key: Hashable, scope: "CheckScope", schema: Schema) -> bool:
        if not isinstance(key, str) or not schema.has_constraint_label(key):
            return True  # site vanished; retract unconditionally
        if key in scope.labels:
            return True
        constraint = schema.constraint_by_label(key)
        if self.setcomp_sensitive and scope.setcomp_site_dirty(
            schema, constraint.referenced_roles()
        ):
            return True
        if any(t in scope.graph_types for t in constraint.referenced_types()):
            return True
        if self.players_sensitive and scope.fact_players_dirty(schema, constraint):
            return True
        return False


class RingPairSitePattern(Pattern):
    """Base for patterns whose sites are ring-constrained role pairs."""

    players_sensitive: bool = False

    def iter_sites(
        self, schema: Schema, scope: "CheckScope | None" = None
    ) -> Iterator[tuple[Hashable, Any]]:
        if scope is None:
            for pair in schema.ring_pairs():
                yield (pair, pair)
            return
        seen: set[tuple[str, ...]] = set()
        for constraint in scope.candidate_constraints(schema):
            if isinstance(constraint, RingConstraint):
                pair = tuple(sorted(constraint.role_pair))
                if pair not in seen:
                    seen.add(pair)
                    yield (pair, pair)

    def site_dirty(self, key: Hashable, scope: "CheckScope", schema: Schema) -> bool:
        roles = key if isinstance(key, tuple) else ()
        if any(not schema.has_role(role) for role in roles):
            return True
        if any(role in scope.roles for role in roles):
            return True
        if not schema.ring_constraints_on((roles[0], roles[1])):
            return True  # every ring constraint on the pair was removed
        if self.players_sensitive and any(
            schema.role(role).player in scope.graph_types for role in roles
        ):
            return True
        return False


class TypeSitePattern(Pattern):
    """Base for analyses whose sites are the object types themselves.

    A type site is dirty when the type's subtype environment moved
    (``graph_types``) or its role set / value-pool membership changed
    (``member_types``) — the union covers type addition and removal, new or
    removed subtype links, and facts appearing on or vanishing from the
    type.  Used by the well-formedness advisories (W01, W07); none of the
    nine paper patterns needs it (their type reasoning rides on constraint
    sites).
    """

    def iter_sites(
        self, schema: Schema, scope: "CheckScope | None" = None
    ) -> Iterator[tuple[Hashable, Any]]:
        if scope is None:
            for object_type in schema.object_types():
                yield (object_type.name, object_type)
            return
        for name in sorted(scope.graph_types | scope.member_types):
            if schema.has_object_type(name):
                yield (name, schema.object_type(name))

    def site_dirty(self, key: Hashable, scope: "CheckScope", schema: Schema) -> bool:
        if not isinstance(key, str) or not schema.has_object_type(key):
            return True  # site vanished; retract unconditionally
        return key in scope.graph_types or key in scope.member_types


@dataclass
class ValidationReport:
    """The outcome of running a set of patterns over a schema."""

    schema_name: str
    violations: list[Violation] = field(default_factory=list)
    patterns_run: tuple[str, ...] = ()
    elapsed_seconds: float = 0.0

    @property
    def is_satisfiable(self) -> bool:
        """True when no pattern fired.

        The patterns are sound but incomplete (paper Sec. 1): ``True`` here
        means "no *common* contradiction found", not a proof of strong
        satisfiability.
        """
        return not self.violations

    def unsatisfiable_roles(self) -> tuple[str, ...]:
        """All role names flagged by any violation, deduplicated."""
        seen: dict[str, None] = {}
        for violation in self.violations:
            for role in violation.roles:
                seen.setdefault(role)
        return tuple(seen)

    def unsatisfiable_types(self) -> tuple[str, ...]:
        """All object-type names flagged by any violation, deduplicated."""
        seen: dict[str, None] = {}
        for violation in self.violations:
            for type_name in violation.types:
                seen.setdefault(type_name)
        return tuple(seen)

    def by_pattern(self) -> dict[str, list[Violation]]:
        """Violations grouped by pattern id (only patterns that fired)."""
        grouped: dict[str, list[Violation]] = {}
        for violation in self.violations:
            grouped.setdefault(violation.pattern_id, []).append(violation)
        return grouped

    def messages(self) -> list[str]:
        """All diagnostic messages, prefixed with their pattern id."""
        return [str(violation) for violation in self.violations]

    def summary(self) -> str:
        """One line for logs/UIs: verdict plus counts."""
        if self.is_satisfiable:
            return (
                f"schema '{self.schema_name}': no unsatisfiability pattern fired "
                f"({len(self.patterns_run)} patterns checked)"
            )
        fired = sorted(self.by_pattern())
        return (
            f"schema '{self.schema_name}': {len(self.violations)} violation(s) "
            f"from pattern(s) {', '.join(fired)}; "
            f"{len(self.unsatisfiable_types())} type(s) and "
            f"{len(self.unsatisfiable_roles())} role(s) unsatisfiable"
        )
