"""Pattern 1 — Top common supertype (paper Fig. 2).

In ORM all object types are mutually exclusive by default, *except* those
sharing a common supertype.  A subtype with several direct supertypes is the
intersection of their populations; if those supertypes share no common
(transitive) supertype they are disjoint by the default, so the subtype can
never be populated.

Formally (paper Sec. 2): for a subtype ``T`` with direct supertypes
``D1..Dn`` (n > 1), if ``supers*(D1) ∩ ... ∩ supers*(Dn) = ∅`` — where
``supers*`` includes the type itself — then ``T`` is unsatisfiable.
Including the type itself is what makes the one-level case work: for
``A, B`` both top-level, ``supers*(A) = {A}`` and ``supers*(B) = {B}``
intersect emptily, while ``A`` and a shared top ``S`` give ``{A, S}`` and
``{B, S}``.
"""

from __future__ import annotations

from repro._util import comma_join, stable_sorted_names
from repro.orm.schema import Schema
from repro.patterns.base import Pattern, Violation


class TopCommonSupertypePattern(Pattern):
    """Detect subtypes whose direct supertypes share no top common supertype.

    Check sites are object types; a site's verdict depends only on the
    subtype graph *above* it, so a scope dirties it exactly when the type is
    in the scope's vertically-closed ``graph_types``.
    """

    pattern_id = "P1"
    name = "Top common supertype"
    description = (
        "A subtype with several supertypes is unsatisfiable when those "
        "supertypes do not share a common supertype (unrelated types are "
        "mutually exclusive in ORM)."
    )

    def iter_sites(self, schema: Schema, scope=None):
        if scope is None:
            names = schema.object_type_names()
        else:
            names = [
                name for name in sorted(scope.graph_types) if schema.has_object_type(name)
            ]
        for name in names:
            yield (name, name)

    def site_dirty(self, key, scope, schema: Schema) -> bool:
        return key in scope.graph_types or not schema.has_object_type(key)

    def check_site(self, schema: Schema, site: str) -> list[Violation]:
        direct_supers = schema.direct_supertypes(site)
        if len(direct_supers) < 2:
            return []
        lines = [set(schema.supertypes_and_self(sup)) for sup in direct_supers]
        common = set.intersection(*lines)
        if common:
            return []
        return [
            self._violation(
                message=(
                    f"the subtype '{site}' cannot be satisfied: its "
                    f"supertypes {comma_join(stable_sorted_names(direct_supers))} "
                    "do not share a top common supertype, so they are mutually "
                    "exclusive"
                ),
                types=(site,),
            )
        ]
