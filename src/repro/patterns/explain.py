"""Repair suggestions for detected violations.

The paper's Sec. 4 experience is that interactive detection *teaches*
modelers ("some of them even admitted that they understood some logics
from their experience in using DogmaModeler").  A diagnostic helps most
when it says not only *what* is contradictory but *which edits would
resolve it*.  :func:`suggest_repairs` maps each pattern's violation to the
concrete candidate repairs, phrased against the violation's own elements.

Suggestions are heuristic by design — they list the minimal constraint
removals/weakenings that dissolve the specific conflict; choosing among
them is the modeler's domain call.
"""

from __future__ import annotations

from repro._util import comma_join
from repro.patterns.base import Violation

_SUGGESTERS = {}


def _register(pattern_id: str):
    def decorator(fn):
        _SUGGESTERS[pattern_id] = fn
        return fn

    return decorator


def suggest_repairs(violation: Violation) -> list[str]:
    """Candidate repairs for ``violation`` (possibly empty for unknown ids)."""
    suggester = _SUGGESTERS.get(violation.pattern_id)
    if suggester is None:
        return []
    return suggester(violation)


@_register("P1")
def _p1(violation: Violation) -> list[str]:
    subject = comma_join(violation.types)
    return [
        f"introduce a common supertype above the supertypes of {subject}",
        f"drop one of the subtype links of {subject} so a single lineage remains",
    ]


@_register("P2")
def _p2(violation: Violation) -> list[str]:
    subject = comma_join(violation.types)
    return [
        f"remove the exclusive constraint {comma_join(violation.constraints)}",
        f"drop one of the subtype links putting {subject} under both excluded types",
    ]


@_register("P3")
def _p3(violation: Violation) -> list[str]:
    return [
        f"remove the exclusion {comma_join(violation.constraints)}",
        "weaken the mandatory to a disjunctive mandatory over the excluded roles "
        "(cf. paper Fig. 14, which is satisfiable for exactly that reason)",
        f"move the roles {comma_join(violation.roles)} to disjoint subtypes",
    ]


@_register("P4")
def _p4(violation: Violation) -> list[str]:
    return [
        "lower the frequency constraint's minimum to the value-pool size",
        "extend the value constraint with enough additional values",
    ]


@_register("P5")
def _p5(violation: Violation) -> list[str]:
    return [
        "extend the value constraint to cover the summed frequency demand",
        f"shrink the exclusion {comma_join(violation.constraints)} to fewer roles",
        "lower the frequency constraints on the inverse roles",
    ]


@_register("P6")
def _p6(violation: Violation) -> list[str]:
    return [
        f"remove the exclusion {comma_join(violation.constraints[:1])}",
        "remove (or redirect) the subset/equality constraints forming the SetPath",
    ]


@_register("P7")
def _p7(violation: Violation) -> list[str]:
    return [
        "drop the uniqueness constraint if instances may play the role several times",
        "lower the frequency minimum to 1 (or replace FC(1-1) by the uniqueness alone)",
    ]


@_register("P8")
def _p8(violation: Violation) -> list[str]:
    return [
        "remove one ring constraint of the incompatible core named in the message",
        "check Table 1 (benchmarks/results/table1.txt) for the nearest compatible "
        "combination",
    ]


@_register("P9")
def _p9(violation: Violation) -> list[str]:
    cycle = comma_join(violation.types)
    return [
        f"break the subtype loop through {cycle}: one of the links points the "
        "wrong way",
        "if two types are genuinely mutually inclusive, merge them into one type",
    ]


@_register("X1")
def _x1(violation: Violation) -> list[str]:
    return [
        "extend the player's value constraint to at least the required support",
        "drop the ring constraint that forces distinct elements (e.g. irreflexivity)",
    ]


@_register("X2")
def _x2(violation: Violation) -> list[str]:
    return [
        "populate the empty value constraint or remove it entirely",
    ]


@_register("X3")
def _x3(violation: Violation) -> list[str]:
    return [
        "remove one of the exclusions so some alternative of the disjunctive "
        "mandatory stays playable",
        "demote one of the simple mandatories involved",
    ]


def explain(violation: Violation) -> str:
    """Message plus numbered repair suggestions, rendered for a tool."""
    lines = [str(violation)]
    for index, suggestion in enumerate(suggest_repairs(violation), start=1):
        lines.append(f"    repair {index}: {suggestion}")
    return "\n".join(lines)
