"""Pattern 5 — Value-Exclusion-Frequency conflicts (paper Fig. 6 and Fig. 7).

Take an exclusion constraint between single roles ``R1..Rn`` all drawing
their players from a value-constrained object type ``T``.  For each ``Ri``,
let ``Si`` be its inverse (partner) role and ``fi`` the lower bound of the
frequency constraint on ``Si`` (1 when absent).  Populating ``Ri`` then
requires at least ``fi`` distinct ``T``-values in ``Ri``'s column: any
partner instance playing ``Si`` must do so ``fi`` times, and set semantics
makes those tuples differ in the ``T`` column.  The exclusion keeps the
columns pairwise disjoint, so populating *all* the roles needs
``f1 + ... + fn`` distinct values.  If the value constraint admits fewer,
some role must stay empty.

Fig. 7 is the frequency-free special case (every ``fi`` is 1): three
mutually excluded roles over a 2-value type cannot all be populated.  The
paper stresses that all three constraint kinds are needed in general —
dropping any one of them in Fig. 6 leaves a satisfiable schema (our
benchmark ablation reproduces that).
"""

from __future__ import annotations

from repro.orm.constraints import ExclusionConstraint
from repro.orm.schema import Schema
from repro.patterns.base import ConstraintSitePattern, Violation


class ValueExclusionFrequencyPattern(ConstraintSitePattern):
    """Detect exclusions whose combined frequency demand exceeds the value pool.

    Check sites are role-level exclusion constraints.  Frequency changes on
    the inverse roles co-dirty the site via the scope's fact-partner closure;
    value pools are inherited, hence ``players_sensitive``.
    """

    pattern_id = "P5"
    name = "Value-Exclusion-Frequency"
    description = (
        "Mutually excluded roles need pairwise-disjoint value sets; a value "
        "constraint smaller than the summed frequency demands starves some role."
    )
    constraint_class = ExclusionConstraint
    players_sensitive = True

    def check_site(self, schema: Schema, site: ExclusionConstraint) -> list[Violation]:
        if not site.is_role_exclusion:
            return []
        roles = site.single_roles()
        pool = self._common_value_pool(schema, roles)
        if pool is None:
            return []
        demands = [
            schema.min_frequency_of(schema.partner_role(role_name).name)
            for role_name in roles
        ]
        needed = sum(demands)
        if pool >= needed:
            return []
        player = schema.role(roles[0]).player
        return [
            self._violation(
                message=(
                    f"some roles in {roles} cannot be instantiated: the "
                    f"exclusion <{site.label}> needs "
                    f"{' + '.join(str(d) for d in demands)} = {needed} distinct "
                    f"values of '{player}', but its value constraint admits "
                    f"only {pool}"
                ),
                roles=roles,
                constraints=(site.label or "",),
                # Each excluded role may be populatable alone; the value
                # pool only starves the set as a whole.
                joint=True,
            )
        ]

    @staticmethod
    def _common_value_pool(schema: Schema, roles: tuple[str, ...]) -> int | None:
        """Size of the value pool shared by all players of ``roles``.

        The appendix assumes a single object type plays all excluded roles;
        we additionally honor the case where the players differ but share a
        value-constrained common supertype (their populations all live in
        that pool), which is a sound refinement.  Returns ``None`` when no
        common value constraint exists.
        """
        player_lines = [
            set(schema.supertypes_and_self(schema.role(role_name).player))
            for role_name in roles
        ]
        shared = set.intersection(*player_lines)
        counts = [
            schema.value_count(candidate)
            for candidate in shared
            if schema.value_count(candidate) is not None
        ]
        if not counts:
            return None
        return min(counts)
