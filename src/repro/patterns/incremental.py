"""Incremental validation: dirty-set scopes and the stateful engine.

The paper's central performance claim is that pattern checking is cheap
enough to run *after every edit* of an interactive modeling session
(Sec. 4).  A full re-validation still costs O(schema) per edit, so edit
cost grows with schema size.  This module makes the per-edit cost
proportional to the **dirty neighborhood** of the edit instead:

1.  :class:`repro.orm.schema.Schema` journals every effective mutation
    (:class:`repro.orm.schema.SchemaChange`) and maintains a dependency
    index (element → referencing constraints/roles/edges).
2.  :func:`scope_from_changes` turns a batch of journal entries into a
    :class:`CheckScope` — the transitive dirty set — via three closures:

    * **fact-partner closure**: a dirty role dirties its partner role and
      fact type (Pattern 4's pool check looks across the predicate);
    * **constraint co-reference closure**: a dirty role dirties every
      constraint referencing it, and those constraints' other roles, to a
      fixpoint (Pattern 7's uniqueness/frequency interplay, X3's
      exclusion chains);
    * **vertical subtype closure**: a type whose subtype edges changed
      dirties all its ancestors *and* descendants (``graph_types``) —
      subtype-closure queries look both up (P1, P4's inherited pools) and
      down (P2, P9) the graph.  Types whose *role set* changed (a fact was
      added/removed) dirty only themselves and their ancestors
      (``member_types``) — enough for X2's blast-radius bookkeeping
      without dragging whole subtrees in.

    Set-comparison constraints compose transitively (Pattern 6's SetPaths),
    but composition cannot cross a connected component of the subset/
    equality graph.  The scope therefore records the *roles* referenced by
    changed subset/equality constraints (``setcomp_roles``), and
    :meth:`CheckScope.setcomp_closure` expands them to their full current
    components via :class:`repro.setcomp.SetPathComponents` — set-comparison
    sensitive sites outside the touched components stay clean.

3.  :class:`IncrementalEngine` keeps, per analysis — the nine patterns,
    and optionally the well-formedness advisories
    (:mod:`repro.patterns.advisories`), the formation rules
    (:mod:`repro.patterns.formation_rules`) and the propagation fixpoint
    (:mod:`repro.patterns.propagation`) — the findings of every **check
    site** (see :mod:`repro.patterns.base`).  On
    :meth:`IncrementalEngine.refresh` it retracts the stored verdicts of
    every dirty site (including sites that vanished — that is how
    finding *retraction* on deletion works) and merges in the freshly
    computed verdicts of the dirty sites that still exist, all from one
    journal drain.

The merge is exact, not heuristic: for every edit script, the cumulative
report of each family equals its from-scratch analysis
(:meth:`PatternEngine.check`, :func:`repro.orm.wellformed.check_wellformedness`,
:func:`repro.patterns.formation_rules.check_formation_rules`,
:func:`repro.patterns.propagation.propagate`) as a multiset of findings
(property-tested in ``tests/patterns/test_incremental.py``).  Report
ordering is canonical (sorted within each analysis) rather than
schema-insertion order.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable, MutableMapping
from dataclasses import dataclass

from repro.orm.constraints import (
    AnyConstraint,
    EqualityConstraint,
    SubsetConstraint,
)
from repro.orm.schema import Schema, SchemaChange
from repro.patterns.base import ValidationReport, Violation
from repro.patterns.engine import PatternEngine
from repro.setcomp import SetPathComponents, SetPathGraph


class CheckScope:
    """The dirty neighborhood of a batch of schema changes.

    Patterns consult it through a small query surface:

    ``graph_types``
        types whose subtype *closure* may have changed — vertically closed
        over ancestors and descendants;
    ``member_types``
        types whose role set (or value pool membership) may have changed —
        closed over ancestors only;
    ``roles`` / ``fact_types`` / ``labels``
        dirty roles, fact types and constraint labels after the partner and
        co-reference closures;
    ``setcomp_roles``
        roles referenced by changed subset/equality constraints;
        :meth:`setcomp_closure` widens them to their full SetPath
        components (set-comparison sensitive sites consult that closure).
    """

    def __init__(
        self,
        graph_types: frozenset[str] = frozenset(),
        member_types: frozenset[str] = frozenset(),
        roles: frozenset[str] = frozenset(),
        fact_types: frozenset[str] = frozenset(),
        labels: frozenset[str] = frozenset(),
        setcomp_roles: frozenset[str] = frozenset(),
    ) -> None:
        self.graph_types = graph_types
        self.member_types = member_types
        self.roles = roles
        self.fact_types = fact_types
        self.labels = labels
        self.setcomp_roles = setcomp_roles
        self._candidates: list[AnyConstraint] | None = None
        self._setcomp_closure: frozenset[str] | None = None
        self._setpath_graph: SetPathGraph | None = None

    @property
    def setcomp_dirty(self) -> bool:
        """True when any subset/equality constraint changed."""
        return bool(self.setcomp_roles)

    @property
    def is_empty(self) -> bool:
        """True when nothing is dirty (refresh can return the cached report)."""
        return not (
            self.graph_types
            or self.member_types
            or self.roles
            or self.fact_types
            or self.labels
            or self.setcomp_roles
        )

    def setcomp_closure(self, schema: Schema) -> frozenset[str]:
        """The SetPath-dirty role set: ``setcomp_roles`` plus every role in
        the same connected component of the *current* subset/equality graph.

        Roles of removed constraints stay in the closure even when they no
        longer appear in any set-comparison constraint — their sites must be
        rechecked because a path through the removed edge may have vanished.
        Cached per scope (components are rebuilt once per refresh).
        """
        if self._setcomp_closure is None:
            if not self.setcomp_roles:
                self._setcomp_closure = frozenset()
            else:
                components = SetPathComponents.from_schema(schema)
                self._setcomp_closure = self.setcomp_roles | components.members_of(
                    self.setcomp_roles
                )
        return self._setcomp_closure

    def setpath_graph(self, schema: Schema) -> SetPathGraph:
        """The SetPath graph of the *current* schema, built lazily and at
        most once per scope — every set-comparison-sensitive check of a
        refresh (Pattern 6, RIDL S1-S3) shares this one graph instead of
        rebuilding it per check (or, worse, per site)."""
        if self._setpath_graph is None:
            self._setpath_graph = SetPathGraph.from_schema(schema)
        return self._setpath_graph

    def setcomp_site_dirty(self, schema: Schema, roles: Iterable[str]) -> bool:
        """Did the SetPath environment of a site over ``roles`` change?"""
        if not self.setcomp_roles:
            return False
        closure = self.setcomp_closure(schema)
        return any(role in closure for role in roles)

    def candidate_constraints(self, schema: Schema) -> list[AnyConstraint]:
        """Every existing constraint whose verdict may have changed.

        The union of (a) constraints whose label is dirty — the co-reference
        closure already put every constraint referencing a dirty role here —
        and (b) constraints referencing a role of a fact played by a
        ``graph_types`` member (their subtype/value-pool environment moved),
        and (c) constraints referencing a dirty type directly (exclusive-X).
        Part (b) reads the schema's per-type constraint rollup
        (:meth:`repro.orm.schema.Schema.constraints_on_type_facts`) instead
        of re-walking the type's roles, facts and partner roles — on wide
        hub types that walk dominated refresh cost.  Cached per scope;
        deterministic order.
        """
        if self._candidates is not None:
            return self._candidates
        seen: set[int] = set()
        out: list[AnyConstraint] = []

        def add(constraint: AnyConstraint) -> None:
            if id(constraint) not in seen:
                seen.add(id(constraint))
                out.append(constraint)

        for label in sorted(self.labels):
            if schema.has_constraint_label(label):
                add(schema.constraint_by_label(label))
        for type_name in sorted(self.graph_types):
            for constraint in schema.constraints_referencing_type(type_name):
                add(constraint)
            for constraint in schema.constraints_on_type_facts(type_name):
                add(constraint)
        self._candidates = out
        return out

    def fact_players_dirty(self, schema: Schema, constraint: AnyConstraint) -> bool:
        """Did the subtype environment of the constraint's players change?

        Looks at the players of *all* roles of every fact the constraint
        touches (Pattern 4 reads the value pool of the partner role's
        player, so the partner matters too).
        """
        for role_name in constraint.referenced_roles():
            if not schema.has_role(role_name):
                return True
            fact = schema.fact_type_of(role_name)
            for fact_role in fact.roles:
                if fact_role.player in self.graph_types:
                    return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CheckScope(types={len(self.graph_types)}/{len(self.member_types)}, "
            f"roles={len(self.roles)}, labels={len(self.labels)}, "
            f"setcomp_dirty={self.setcomp_dirty})"
        )


def scope_from_changes(
    schema: Schema, changes: Iterable[SchemaChange]
) -> CheckScope:
    """Compute the :class:`CheckScope` of a batch of journal entries.

    Removed elements are reasoned about through the change payloads (they no
    longer exist in the schema); all closures run against the *current*
    schema state.
    """
    graph_seeds: set[str] = set()
    member_seeds: set[str] = set()
    roles: set[str] = set()
    fact_types: set[str] = set()
    labels: set[str] = set()
    setcomp_roles: set[str] = set()

    for change in changes:
        if change.kind == "object_type":
            graph_seeds.add(change.name)
            member_seeds.add(change.name)
        elif change.kind == "subtype":
            link = change.payload
            graph_seeds.update((link.sub, link.super))
        elif change.kind == "fact_type":
            fact = change.payload
            fact_types.add(fact.name)
            for role in fact.roles:
                roles.add(role.name)
                member_seeds.add(role.player)
        elif change.kind == "constraint":
            constraint = change.payload
            # Labels are schema-generated and never empty (asserted by
            # Schema.add_constraint), so they key the co-reference closure
            # without collapsing distinct constraints.
            labels.add(constraint.label)
            roles.update(constraint.referenced_roles())
            if isinstance(constraint, (SubsetConstraint, EqualityConstraint)):
                setcomp_roles.update(constraint.referenced_roles())

    # Fact-partner and constraint co-reference closures, to a fixpoint.
    queue = list(roles)
    while queue:
        role_name = queue.pop()
        if not schema.has_role(role_name):
            continue  # removed role; its constraints were journaled too
        fact = schema.fact_type_of(role_name)
        fact_types.add(fact.name)
        for other in fact.role_names:
            if other not in roles:
                roles.add(other)
                queue.append(other)
        for constraint in schema.constraints_referencing_role(role_name):
            label = constraint.label
            if label in labels:
                continue
            labels.add(label)
            for other in constraint.referenced_roles():
                if other not in roles:
                    roles.add(other)
                    queue.append(other)

    graph_types = _vertical_closure(schema, graph_seeds, up=True, down=True)
    member_types = _vertical_closure(schema, member_seeds, up=True, down=False)
    return CheckScope(
        graph_types=frozenset(graph_types),
        member_types=frozenset(member_types),
        roles=frozenset(roles),
        fact_types=frozenset(fact_types),
        labels=frozenset(labels),
        setcomp_roles=frozenset(setcomp_roles),
    )


def _vertical_closure(
    schema: Schema, seeds: set[str], *, up: bool, down: bool
) -> set[str]:
    """Seeds plus everything reachable along the subtype graph; cycle-safe."""
    closed = set(seeds)
    queue = [name for name in seeds if schema.has_object_type(name)]
    directions = []
    if up:
        directions.append(schema.direct_supertypes)
    if down:
        directions.append(schema.direct_subtypes)
    while queue:
        current = queue.pop()
        for step in directions:
            for neighbor in step(current):
                if neighbor not in closed:
                    closed.add(neighbor)
                    queue.append(neighbor)
    return closed


#: Journal entries all consumers must have drained before the engine asks
#: the schema to truncate (hysteresis for the checkpointing list surgery).
JOURNAL_COMPACT_THRESHOLD = 128


@dataclass
class EngineSnapshot:
    """A suspended :class:`IncrementalEngine`: per-site finding stores plus
    the journal mark they are valid at.

    Produced by :meth:`IncrementalEngine.suspend` and consumed by
    :meth:`IncrementalEngine.resume`.  The snapshot *owns* the site stores
    (the engine hands them over rather than copying), so drop the engine
    after suspending it.  A snapshot stays resumable for as long as the
    schema's journal retains the entries after ``mark`` — the suspended
    engine no longer pins the journal (its weak consumer registration dies
    with it), so the replay window is only guaranteed while no *other*
    consumer triggers :meth:`repro.orm.schema.Schema.compact_journal` past
    the mark; :meth:`IncrementalEngine.resume` raises
    :class:`repro.exceptions.SchemaError` when the window was truncated and
    the caller must rebuild from scratch instead.
    """

    mark: int
    sites: dict[str, MutableMapping]
    enabled_ids: tuple[str, ...]
    advisories: bool
    formation_rules: bool
    propagation: bool


class IncrementalEngine:
    """A stateful, dependency-indexed engine over every site-based analysis.

    Attach it to a live :class:`Schema`; the constructor performs one full
    check, and every :meth:`refresh` afterwards only re-examines the check
    sites dirtied by the schema mutations since the previous call, merging
    scoped verdicts into persistent per-site finding stores (retracting the
    verdicts of sites that were touched or deleted).

    One engine drives up to four **analysis families** from a single
    journal drain:

    * the unsatisfiability patterns (always on; same ``enabled`` /
      ``include_extensions`` arguments as :class:`PatternEngine`), read via
      :meth:`report`;
    * the well-formedness advisories W01–W07 (``advisories=True``), read
      via :meth:`advisories`;
    * the formation/RIDL rules (``formation_rules=True``), read via
      :meth:`rule_findings`;
    * unsatisfiability propagation (``propagation=True``), maintained
      DRed-style by :class:`repro.patterns.propagation.IncrementalPropagator`
      and read via :meth:`propagation`.

    Findings are ordered canonically (sorted within each check) rather than
    by schema insertion order, and equal the corresponding from-scratch
    analysis as a multiset.  The engine registers itself as a journal
    consumer and triggers :meth:`repro.orm.schema.Schema.compact_journal`
    after each drain, so long-lived sessions do not accumulate unbounded
    journals.

    Two hooks serve multi-session deployments
    (:class:`repro.server.ValidationService`):

    * ``store_factory`` chooses the mapping type backing each per-site
      finding store — e.g. :class:`repro.server.ShardedSiteStore`, which
      partitions sites by a stable site-key hash so shard refreshes of
      disjoint shards are independent units of work;
    * :meth:`suspend` / :meth:`resume` park an idle engine as an
      :class:`EngineSnapshot` and later resurrect it by replaying only the
      journal-checkpoint window since its mark (LRU eviction of idle
      engines without losing incrementality).
    """

    def __init__(
        self,
        schema: Schema,
        enabled: Iterable[str] | None = None,
        include_extensions: bool = False,
        *,
        advisories: bool = False,
        formation_rules: bool = False,
        propagation: bool = False,
        store_factory: Callable[[], MutableMapping] | None = None,
        _resume_from: EngineSnapshot | None = None,
    ) -> None:
        from repro.patterns.advisories import WELLFORMED_CHECKS
        from repro.patterns.formation_rules import FORMATION_CHECKS
        from repro.patterns.propagation import IncrementalPropagator

        self.schema = schema
        self._engine = PatternEngine(enabled, include_extensions)
        self._patterns = self._engine.enabled_patterns()
        self._advisory_checks = WELLFORMED_CHECKS if advisories else ()
        self._rule_checks = FORMATION_CHECKS if formation_rules else ()
        self._store_factory: Callable[[], MutableMapping] = store_factory or dict
        self._wants_propagation = propagation
        self._propagator = None
        self._sites: dict[str, MutableMapping] = {}
        if _resume_from is not None:
            self._resume_from_snapshot(_resume_from)
            return
        self._mark = schema.journal_size
        started = time.perf_counter()
        for check in self._analyses():
            store = self._store_factory()
            store.update(check.check_scoped(schema, None))
            self._sites[check.pattern_id] = store
        self._build_outputs(time.perf_counter() - started)
        if propagation:
            self._propagator = IncrementalPropagator(schema)
            self._propagator.rebuild(self._report)
        schema.attach_journal_consumer(self)

    def _resume_from_snapshot(self, snapshot: EngineSnapshot) -> None:
        """Adopt a snapshot's stores and replay the journal window after its
        mark; raises :class:`~repro.exceptions.SchemaError` when truncated."""
        from repro.patterns.propagation import IncrementalPropagator

        # repro-lint: disable=RL004 -- deliberate probe: raising SchemaError here IS the documented truncation signal; the service catches it and rebuilds
        self.schema.changes_since(snapshot.mark)  # probe the replay window
        expected = {check.pattern_id for check in self._analyses()}
        if set(snapshot.sites) != expected:
            raise ValueError(
                "snapshot was taken under a different analysis configuration "
                f"({sorted(snapshot.sites)} != {sorted(expected)})"
            )
        self._sites = dict(snapshot.sites)
        self._mark = snapshot.mark
        self._build_outputs(0.0)
        self.schema.attach_journal_consumer(self)
        self.refresh()  # replay the window (propagator not attached yet)
        if self._wants_propagation:
            self._propagator = IncrementalPropagator(self.schema)
            self._propagator.rebuild(self._report)

    def suspend(self) -> EngineSnapshot:
        """Freeze this engine into an :class:`EngineSnapshot` and hand over
        its site stores.

        The caller must drop the engine afterwards (its journal-consumer
        registration is weak, so the schema stops waiting on it) and may
        later :meth:`resume` — paying only the replay of the journal window
        between the snapshot's mark and the schema's head instead of a full
        re-check.  This is what lets a multi-session service keep only its
        hottest engines live (LRU) without losing incrementality.
        """
        return EngineSnapshot(
            mark=self._mark,
            sites=self._sites,
            enabled_ids=self._engine.enabled_ids,
            advisories=bool(self._advisory_checks),
            formation_rules=bool(self._rule_checks),
            propagation=self._wants_propagation,
        )

    @classmethod
    def resume(
        cls,
        schema: Schema,
        snapshot: EngineSnapshot,
        *,
        store_factory: Callable[[], MutableMapping] | None = None,
    ) -> "IncrementalEngine":
        """Resurrect a suspended engine on its schema.

        Replays exactly the journal entries recorded since the snapshot's
        mark (the checkpoint replay window).  Raises
        :class:`~repro.exceptions.SchemaError` when the window was
        truncated by checkpointing — the caller falls back to building a
        fresh engine.
        """
        return cls(
            schema,
            enabled=snapshot.enabled_ids,
            advisories=snapshot.advisories,
            formation_rules=snapshot.formation_rules,
            propagation=snapshot.propagation,
            store_factory=store_factory,
            _resume_from=snapshot,
        )

    def _analyses(self) -> tuple:
        """Every site-based check this engine maintains, patterns first."""
        return (*self._patterns, *self._advisory_checks, *self._rule_checks)

    @property
    def enabled_ids(self) -> tuple[str, ...]:
        """The pattern ids this engine maintains."""
        return self._engine.enabled_ids

    @property
    def journal_mark(self) -> int:
        """The journal position drained so far (the consumer protocol of
        :meth:`repro.orm.schema.Schema.attach_journal_consumer`)."""
        return self._mark

    def report(self) -> ValidationReport:
        """The current cumulative pattern report (without consuming changes)."""
        return self._report

    def advisories(self) -> list:
        """The current well-formedness advisories (empty unless the family
        was enabled with ``advisories=True``)."""
        return list(self._advisories)

    def rule_findings(self) -> list:
        """The current formation-rule findings (empty unless enabled)."""
        return list(self._rule_findings)

    def propagation(self):
        """The current :class:`~repro.patterns.propagation.PropagationResult`
        (None unless the family was enabled with ``propagation=True``)."""
        if self._propagator is None:
            return None
        return self._propagator.result()

    def refresh(self, *, executor=None) -> ValidationReport:
        """Consume the schema changes since the last call and re-validate.

        Cost is proportional to the dirty neighborhood of those changes,
        not to the schema size, for every enabled analysis family.

        With ``executor`` (a :class:`concurrent.futures.Executor`) the
        per-analysis scoped refreshes fan out as independent tasks instead
        of running on the calling thread: every analysis owns its own
        finding store, reads the schema without mutating it, and retracts/
        merges shard by shard when the store is sharded, so the units never
        share mutable state.  The caller must still serialize ``refresh``
        with schema edits (the service holds the session lock for the whole
        call); the executor must be a *different* pool from the one the
        caller runs on, or a saturated pool deadlocks on its own subtasks.
        """
        started = time.perf_counter()
        # repro-lint: disable=RL004 -- cannot truncate under us: this engine is an attached consumer, so compaction never drops past our own journal_mark
        changes = self.schema.changes_since(self._mark)
        self._mark = self.schema.journal_size
        self.schema.compact_journal(min_drop=JOURNAL_COMPACT_THRESHOLD)
        if not changes:
            return self._report
        scope = scope_from_changes(self.schema, changes)
        if scope.is_empty:
            return self._report
        analyses = self._analyses()
        if executor is None or len(analyses) <= 1:
            for check in analyses:
                self._refresh_analysis(check, scope)
        else:
            # Prime the scope's lazily-built shared caches once, on this
            # thread, so the fanned-out tasks only ever read them.  The
            # SetPath graph is primed unconditionally: P6/S1-S3 consult it
            # whenever they have in-scope sites, setcomp-dirty or not.
            scope.candidate_constraints(self.schema)
            scope.setcomp_closure(self.schema)
            scope.setpath_graph(self.schema)
            list(
                executor.map(
                    lambda check: self._refresh_analysis(check, scope), analyses
                )
            )
        self._build_outputs(time.perf_counter() - started)
        if self._propagator is not None:
            self._propagator.refresh(scope, self._report)
        return self._report

    def _refresh_analysis(self, check, scope: CheckScope) -> None:
        """One analysis's scoped refresh: recompute the dirty sites, then
        retract and merge — shard by shard when the store is sharded (the
        independent unit of a sharded deployment)."""
        stored = self._sites[check.pattern_id]
        fresh = check.check_scoped(self.schema, scope)
        shards = stored.shards() if hasattr(stored, "shards") else (stored,)
        for shard in shards:
            for key in [k for k in shard if check.site_dirty(k, scope, self.schema)]:
                del shard[key]
        stored.update(fresh)

    def site_count(self) -> int:
        """The engine's *weight* for capacity accounting: the size of its
        check-site universe (every schema element is a potential site of
        the enabled analyses) plus the findings currently stored.  A big
        schema's engine weighs proportionally more of a service's
        live-engine budget than a tiny one.  Reads only O(1) container
        sizes, so it is safe to call concurrently with edits (the census
        is approximate under concurrency by design)."""
        return self.schema.element_count() + sum(
            len(store) for store in self._sites.values()
        )

    # `check()` mirrors PatternEngine's entry point for drop-in use.
    def check(self, schema: Schema | None = None) -> ValidationReport:
        """Refresh and return the report; ``schema`` must be the attached one."""
        if schema is not None and schema is not self.schema:
            raise ValueError(
                "IncrementalEngine is bound to one schema; build a new engine "
                "for a different schema object"
            )
        return self.refresh()

    def _collect(self, checks, sort_key) -> list:
        findings = []
        for check in checks:
            batch = [
                finding
                for site_findings in self._sites[check.pattern_id].values()
                for finding in site_findings
            ]
            batch.sort(key=sort_key)
            findings.extend(batch)
        return findings

    def _build_outputs(self, elapsed: float) -> None:
        violations: list[Violation] = self._collect(
            self._patterns,
            lambda v: (v.types, v.roles, v.constraints, v.message),
        )
        self._report = ValidationReport(
            schema_name=self.schema.metadata.name,
            violations=violations,
            patterns_run=self._engine.enabled_ids,
            elapsed_seconds=elapsed,
        )
        self._advisories = self._collect(
            self._advisory_checks, lambda a: (a.elements, a.message)
        )
        self._rule_findings = self._collect(
            self._rule_checks, lambda f: (f.elements, f.message)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IncrementalEngine(schema={self.schema.metadata.name!r}, "
            f"patterns={list(self._engine.enabled_ids)}, "
            f"advisories={bool(self._advisory_checks)}, "
            f"rules={bool(self._rule_checks)}, "
            f"propagation={self._propagator is not None})"
        )
