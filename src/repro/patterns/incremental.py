"""Incremental validation: dirty-set scopes and the stateful engine.

The paper's central performance claim is that pattern checking is cheap
enough to run *after every edit* of an interactive modeling session
(Sec. 4).  A full re-validation still costs O(schema) per edit, so edit
cost grows with schema size.  This module makes the per-edit cost
proportional to the **dirty neighborhood** of the edit instead:

1.  :class:`repro.orm.schema.Schema` journals every effective mutation
    (:class:`repro.orm.schema.SchemaChange`) and maintains a dependency
    index (element → referencing constraints/roles/edges).
2.  :func:`scope_from_changes` turns a batch of journal entries into a
    :class:`CheckScope` — the transitive dirty set — via three closures:

    * **fact-partner closure**: a dirty role dirties its partner role and
      fact type (Pattern 4's pool check looks across the predicate);
    * **constraint co-reference closure**: a dirty role dirties every
      constraint referencing it, and those constraints' other roles, to a
      fixpoint (Pattern 7's uniqueness/frequency interplay, X3's
      exclusion chains);
    * **vertical subtype closure**: a type whose subtype edges changed
      dirties all its ancestors *and* descendants (``graph_types``) —
      subtype-closure queries look both up (P1, P4's inherited pools) and
      down (P2, P9) the graph.  Types whose *role set* changed (a fact was
      added/removed) dirty only themselves and their ancestors
      (``member_types``) — enough for X2's blast-radius bookkeeping
      without dragging whole subtrees in.

    Set-comparison constraints compose transitively (Pattern 6's SetPaths),
    so any subset/equality change sets the scope-wide ``setcomp_dirty``
    flag instead of attempting locality.

3.  :class:`IncrementalEngine` keeps, per pattern, the violations of every
    **check site** (see :mod:`repro.patterns.base`).  On
    :meth:`IncrementalEngine.refresh` it retracts the stored verdicts of
    every dirty site (including sites that vanished — that is how
    violation *retraction* on deletion works) and merges in the freshly
    computed verdicts of the dirty sites that still exist.

The merge is exact, not heuristic: for every edit script, the cumulative
report equals a from-scratch :meth:`PatternEngine.check` as a multiset of
violations (property-tested in ``tests/patterns/test_incremental.py``).
Report ordering is canonical (sorted within each pattern) rather than
schema-insertion order.
"""

from __future__ import annotations

import time
from collections.abc import Hashable, Iterable

from repro.orm.constraints import (
    AnyConstraint,
    EqualityConstraint,
    SubsetConstraint,
)
from repro.orm.schema import Schema, SchemaChange
from repro.patterns.base import ValidationReport, Violation
from repro.patterns.engine import PatternEngine


class CheckScope:
    """The dirty neighborhood of a batch of schema changes.

    Patterns consult it through a small query surface:

    ``graph_types``
        types whose subtype *closure* may have changed — vertically closed
        over ancestors and descendants;
    ``member_types``
        types whose role set (or value pool membership) may have changed —
        closed over ancestors only;
    ``roles`` / ``fact_types`` / ``labels``
        dirty roles, fact types and constraint labels after the partner and
        co-reference closures;
    ``setcomp_dirty``
        True when any subset/equality constraint changed (Pattern 6 then
        rechecks all of its sites).
    """

    def __init__(
        self,
        graph_types: frozenset[str] = frozenset(),
        member_types: frozenset[str] = frozenset(),
        roles: frozenset[str] = frozenset(),
        fact_types: frozenset[str] = frozenset(),
        labels: frozenset[str] = frozenset(),
        setcomp_dirty: bool = False,
    ) -> None:
        self.graph_types = graph_types
        self.member_types = member_types
        self.roles = roles
        self.fact_types = fact_types
        self.labels = labels
        self.setcomp_dirty = setcomp_dirty
        self._candidates: list[AnyConstraint] | None = None

    @property
    def is_empty(self) -> bool:
        """True when nothing is dirty (refresh can return the cached report)."""
        return not (
            self.graph_types
            or self.member_types
            or self.roles
            or self.fact_types
            or self.labels
            or self.setcomp_dirty
        )

    def candidate_constraints(self, schema: Schema) -> list[AnyConstraint]:
        """Every existing constraint whose verdict may have changed.

        The union of (a) constraints whose label is dirty — the co-reference
        closure already put every constraint referencing a dirty role here —
        and (b) constraints referencing a role of a fact played by a
        ``graph_types`` member (their subtype/value-pool environment moved),
        and (c) constraints referencing a dirty type directly (exclusive-X).
        Cached per scope; deterministic order.
        """
        if self._candidates is not None:
            return self._candidates
        seen: set[int] = set()
        out: list[AnyConstraint] = []

        def add(constraint: AnyConstraint) -> None:
            if id(constraint) not in seen:
                seen.add(id(constraint))
                out.append(constraint)

        for label in sorted(self.labels):
            if schema.has_constraint_label(label):
                add(schema.constraint_by_label(label))
        for type_name in sorted(self.graph_types):
            for constraint in schema.constraints_referencing_type(type_name):
                add(constraint)
            if not schema.has_object_type(type_name):
                continue
            for role in schema.roles_played_by(type_name):
                fact = schema.fact_type(role.fact_type)
                for role_name in fact.role_names:
                    for constraint in schema.constraints_referencing_role(role_name):
                        add(constraint)
        self._candidates = out
        return out

    def fact_players_dirty(self, schema: Schema, constraint: AnyConstraint) -> bool:
        """Did the subtype environment of the constraint's players change?

        Looks at the players of *all* roles of every fact the constraint
        touches (Pattern 4 reads the value pool of the partner role's
        player, so the partner matters too).
        """
        for role_name in constraint.referenced_roles():
            if not schema.has_role(role_name):
                return True
            fact = schema.fact_type_of(role_name)
            for fact_role in fact.roles:
                if fact_role.player in self.graph_types:
                    return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CheckScope(types={len(self.graph_types)}/{len(self.member_types)}, "
            f"roles={len(self.roles)}, labels={len(self.labels)}, "
            f"setcomp_dirty={self.setcomp_dirty})"
        )


def scope_from_changes(
    schema: Schema, changes: Iterable[SchemaChange]
) -> CheckScope:
    """Compute the :class:`CheckScope` of a batch of journal entries.

    Removed elements are reasoned about through the change payloads (they no
    longer exist in the schema); all closures run against the *current*
    schema state.
    """
    graph_seeds: set[str] = set()
    member_seeds: set[str] = set()
    roles: set[str] = set()
    fact_types: set[str] = set()
    labels: set[str] = set()
    setcomp_dirty = False

    for change in changes:
        if change.kind == "object_type":
            graph_seeds.add(change.name)
            member_seeds.add(change.name)
        elif change.kind == "subtype":
            link = change.payload
            graph_seeds.update((link.sub, link.super))
        elif change.kind == "fact_type":
            fact = change.payload
            fact_types.add(fact.name)
            for role in fact.roles:
                roles.add(role.name)
                member_seeds.add(role.player)
        elif change.kind == "constraint":
            constraint = change.payload
            labels.add(constraint.label or "")
            roles.update(constraint.referenced_roles())
            if isinstance(constraint, (SubsetConstraint, EqualityConstraint)):
                setcomp_dirty = True

    # Fact-partner and constraint co-reference closures, to a fixpoint.
    queue = list(roles)
    while queue:
        role_name = queue.pop()
        if not schema.has_role(role_name):
            continue  # removed role; its constraints were journaled too
        fact = schema.fact_type_of(role_name)
        fact_types.add(fact.name)
        for other in fact.role_names:
            if other not in roles:
                roles.add(other)
                queue.append(other)
        for constraint in schema.constraints_referencing_role(role_name):
            label = constraint.label or ""
            if label in labels:
                continue
            labels.add(label)
            for other in constraint.referenced_roles():
                if other not in roles:
                    roles.add(other)
                    queue.append(other)

    graph_types = _vertical_closure(schema, graph_seeds, up=True, down=True)
    member_types = _vertical_closure(schema, member_seeds, up=True, down=False)
    return CheckScope(
        graph_types=frozenset(graph_types),
        member_types=frozenset(member_types),
        roles=frozenset(roles),
        fact_types=frozenset(fact_types),
        labels=frozenset(labels),
        setcomp_dirty=setcomp_dirty,
    )


def _vertical_closure(
    schema: Schema, seeds: set[str], *, up: bool, down: bool
) -> set[str]:
    """Seeds plus everything reachable along the subtype graph; cycle-safe."""
    closed = set(seeds)
    queue = [name for name in seeds if schema.has_object_type(name)]
    directions = []
    if up:
        directions.append(schema.direct_supertypes)
    if down:
        directions.append(schema.direct_subtypes)
    while queue:
        current = queue.pop()
        for step in directions:
            for neighbor in step(current):
                if neighbor not in closed:
                    closed.add(neighbor)
                    queue.append(neighbor)
    return closed


class IncrementalEngine:
    """A stateful, dependency-indexed wrapper around the pattern registry.

    Attach it to a live :class:`Schema`; the constructor performs one full
    check, and every :meth:`refresh` afterwards only re-examines the check
    sites dirtied by the schema mutations since the previous call, merging
    scoped verdicts into the persistent per-site violation store
    (retracting the verdicts of sites that were touched or deleted).

    The engine accepts the same ``enabled`` / ``include_extensions``
    arguments as :class:`PatternEngine` and produces the same
    :class:`ValidationReport` type; violations are ordered canonically
    (sorted within each pattern) rather than by schema insertion order, and
    equal a from-scratch check as a multiset.
    """

    def __init__(
        self,
        schema: Schema,
        enabled: Iterable[str] | None = None,
        include_extensions: bool = False,
    ) -> None:
        self.schema = schema
        self._engine = PatternEngine(enabled, include_extensions)
        self._patterns = self._engine.enabled_patterns()
        self._sites: dict[str, dict[Hashable, tuple[Violation, ...]]] = {}
        self._mark = schema.journal_size
        started = time.perf_counter()
        for pattern in self._patterns:
            self._sites[pattern.pattern_id] = dict(pattern.check_scoped(schema, None))
        self._report = self._build_report(time.perf_counter() - started)

    @property
    def enabled_ids(self) -> tuple[str, ...]:
        """The pattern ids this engine maintains."""
        return self._engine.enabled_ids

    def report(self) -> ValidationReport:
        """The current cumulative report (without consuming new changes)."""
        return self._report

    def refresh(self) -> ValidationReport:
        """Consume the schema changes since the last call and re-validate.

        Cost is proportional to the dirty neighborhood of those changes,
        not to the schema size.
        """
        started = time.perf_counter()
        changes = self.schema.changes_since(self._mark)
        self._mark = self.schema.journal_size
        if not changes:
            return self._report
        scope = scope_from_changes(self.schema, changes)
        if scope.is_empty:
            return self._report
        for pattern in self._patterns:
            stored = self._sites[pattern.pattern_id]
            fresh = pattern.check_scoped(self.schema, scope)
            for key in [k for k in stored if pattern.site_dirty(k, scope, self.schema)]:
                del stored[key]
            stored.update(fresh)
        self._report = self._build_report(time.perf_counter() - started)
        return self._report

    # `check()` mirrors PatternEngine's entry point for drop-in use.
    def check(self, schema: Schema | None = None) -> ValidationReport:
        """Refresh and return the report; ``schema`` must be the attached one."""
        if schema is not None and schema is not self.schema:
            raise ValueError(
                "IncrementalEngine is bound to one schema; build a new engine "
                "for a different schema object"
            )
        return self.refresh()

    def _build_report(self, elapsed: float) -> ValidationReport:
        violations: list[Violation] = []
        for pattern in self._patterns:
            batch = [
                violation
                for site_violations in self._sites[pattern.pattern_id].values()
                for violation in site_violations
            ]
            batch.sort(key=lambda v: (v.types, v.roles, v.constraints, v.message))
            violations.extend(batch)
        return ValidationReport(
            schema_name=self.schema.metadata.name,
            violations=violations,
            patterns_run=self._engine.enabled_ids,
            elapsed_seconds=elapsed,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IncrementalEngine(schema={self.schema.metadata.name!r}, "
            f"patterns={list(self._engine.enabled_ids)})"
        )
