"""Pattern 3 — Exclusion-Mandatory conflicts (paper Fig. 4 a/b/c).

An exclusion constraint between single roles contradicts a mandatory
constraint on one of them whenever another excluded role is played by the
same object type or one of its subtypes:

* **(a)** ``r1`` mandatory on ``A``, exclusion ``r1 X r3`` with ``r3`` also
  played by ``A``: every ``A`` plays ``r1``, so nothing can play ``r3``.
* **(b)** both ``r1`` and ``r3`` mandatory on ``A``: every instance must
  play both but may play at most one — ``A`` itself is unpopulatable, and
  with it both roles.
* **(c)** the conflicting role is played by a *subtype* ``B`` of ``A``:
  instances of ``B`` inherit ``A``'s mandatory role, so ``B``'s excluded
  roles are unplayable (and if they are mandatory on ``B``, ``B`` is empty).

This is formation rule 5 of [H89] made precise and extended to subtypes
(paper Sec. 3).
"""

from __future__ import annotations

from repro._util import ordered_pairs
from repro.orm.constraints import ExclusionConstraint
from repro.orm.schema import Schema
from repro.patterns.base import ConstraintSitePattern, Violation


class ExclusionMandatoryPattern(ConstraintSitePattern):
    """Detect exclusion constraints conflicting with mandatory roles.

    Check sites are the role-level exclusion constraints.  The verdict also
    depends on the mandatory status of the excluded roles (any constraint
    change on them co-dirties the site via the scope's closure) and on the
    subtype relation between their players (``players_sensitive``).
    """

    pattern_id = "P3"
    name = "Exclusion-Mandatory"
    description = (
        "A role excluded with a mandatory role of the same object type (or a "
        "supertype) can never be played."
    )
    constraint_class = ExclusionConstraint
    players_sensitive = True

    def check_site(self, schema: Schema, site: ExclusionConstraint) -> list[Violation]:
        if not site.is_role_exclusion:
            return []
        return self._check_exclusion(schema, site, schema.mandatory_role_names())

    def _check_exclusion(
        self,
        schema: Schema,
        constraint: ExclusionConstraint,
        mandatory: set[str],
    ) -> list[Violation]:
        found: list[Violation] = []
        roles = constraint.single_roles()
        reported_pairs: set[frozenset[str]] = set()
        for first, second in ordered_pairs(roles):
            if first not in mandatory:
                continue
            first_player = schema.role(first).player
            second_player = schema.role(second).player
            subs = set(schema.subtypes_and_self(first_player))
            if second_player not in subs:
                continue
            pair_key = frozenset((first, second))
            if pair_key in reported_pairs:
                # Both roles mandatory on the same player: the ordered loop
                # would report the pair twice; case (b) below already
                # produced the stronger (type-unsat) diagnosis.
                continue
            reported_pairs.add(pair_key)
            label = constraint.label or ""
            if second in mandatory and second_player == first_player:
                # Case (b): the object type itself is unpopulatable.
                found.append(
                    self._violation(
                        message=(
                            f"object type '{first_player}' cannot be populated: "
                            f"roles '{first}' and '{second}' are both mandatory "
                            f"but exclusive (<{label}>); with it, both roles are "
                            "unsatisfiable"
                        ),
                        roles=(first, second),
                        types=(first_player,),
                        constraints=(label,),
                    )
                )
            elif second in mandatory:
                # Case (c) with a mandatory role on the subtype: the subtype
                # is unpopulatable (its instances would have to play both).
                found.append(
                    self._violation(
                        message=(
                            f"object type '{second_player}' cannot be populated: "
                            f"its mandatory role '{second}' is exclusive "
                            f"(<{label}>) with role '{first}', which is mandatory "
                            f"on its supertype '{first_player}'"
                        ),
                        roles=(second,),
                        types=(second_player,),
                        constraints=(label,),
                    )
                )
            else:
                # Cases (a) and (c): the excluded role can never be played.
                relation = (
                    "the same object type"
                    if second_player == first_player
                    else f"a subtype of '{first_player}'"
                )
                found.append(
                    self._violation(
                        message=(
                            f"role '{second}' can never be played: every instance "
                            f"of '{second_player}' ({relation}) must play the "
                            f"mandatory role '{first}', and the exclusion "
                            f"<{label}> forbids playing '{second}' as well"
                        ),
                        roles=(second,),
                        constraints=(label,),
                    )
                )
        return found
