"""Pattern 2 — Exclusive constraint between types (paper Fig. 1 and Fig. 3).

An exclusive ("X") constraint makes the populations of the listed object
types pairwise disjoint.  Any common subtype of two excluded types is the
intersection of two disjoint sets — empty — and so are all of *its*
subtypes.

Formally: for every exclusive constraint over ``T1..Tn`` and every pair
``Ti, Tj`` (i ≠ j), ``subs*(Ti) ∩ subs*(Tj)`` must be empty, where ``subs*``
includes the type itself.  Including the type itself also catches the
degenerate-but-legal declaration of an exclusion between a type and its own
(transitive) subtype, where the subtype is forced empty.
"""

from __future__ import annotations

from repro._util import comma_join, pairs, stable_sorted_names
from repro.orm.constraints import ExclusiveTypesConstraint
from repro.orm.schema import Schema
from repro.patterns.base import ConstraintSitePattern, Violation


class ExclusiveSubtypesPattern(ConstraintSitePattern):
    """Detect subtypes of mutually exclusive supertypes.

    Check sites are the exclusive-types constraints; the verdict depends on
    the subtrees below the listed types, so a site is dirty when any listed
    type lies in the scope's ``graph_types`` (which contains the ancestors
    of every type whose subtree changed).
    """

    pattern_id = "P2"
    name = "Exclusive constraint between types"
    description = (
        "A common subtype of object types declared mutually exclusive can "
        "never be populated."
    )
    constraint_class = ExclusiveTypesConstraint

    def check_site(
        self, schema: Schema, site: ExclusiveTypesConstraint
    ) -> list[Violation]:
        violations: list[Violation] = []
        # The check is symmetric in (Ti, Tj); the appendix's ordered
        # double loop visits each pair twice, we visit it once.
        for first, second in pairs(site.types):
            common = set(schema.subtypes_and_self(first)) & set(
                schema.subtypes_and_self(second)
            )
            if not common:
                continue
            flagged = tuple(stable_sorted_names(common))
            violations.append(
                self._violation(
                    message=(
                        f"the subtype(s) {comma_join(flagged)} cannot be "
                        f"instantiated: they fall under both '{first}' and "
                        f"'{second}', which the exclusive constraint "
                        f"<{site.label}> declares disjoint"
                    ),
                    types=flagged,
                    constraints=(site.label or "",),
                )
            )
        return violations
