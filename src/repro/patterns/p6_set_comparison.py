"""Pattern 6 — Set-comparison conflicts (paper Fig. 8 and Fig. 9).

An exclusion constraint contradicts any *SetPath* — a declared or implied
subset/equality chain (see :mod:`repro.setcomp`) — between its arguments:

* exclusion between **predicates** ``A X B`` plus a SetPath ``A ⊆ ... ⊆ B``
  forces ``A``'s tuple set to be both inside ``B``'s and disjoint from it,
  i.e. empty — the sub-side predicate is unpopulatable;
* exclusion between **roles** ``r1 X r3`` conflicts both with a role-level
  SetPath between them and with a predicate-level SetPath between their fact
  types (the predicate subset implies the role subset by Fig. 9).

The appendix checks both directions via ``GetSetPathsBetween``; so do we.
For each direction found we flag the *sub-side* sequence's roles — that side
is provably empty.  (The paper's prose says "the two predicates cannot be
populated"; with a one-directional subset only the sub side is forced empty,
and the bounded model finder confirms exactly that, so the implementation
follows the semantics.  With an equality SetPath both sides are flagged.)
"""

from __future__ import annotations

from repro._util import pairs
from repro.orm.constraints import ExclusionConstraint, RoleSequence
from repro.orm.schema import Schema
from repro.patterns.base import ConstraintSitePattern, Violation
from repro.setcomp import SetPath, SetPathGraph


class SetComparisonPattern(ConstraintSitePattern):
    """Detect exclusion constraints contradicting subset/equality SetPaths.

    Check sites are the exclusion constraints, but the verdict consults the
    subset/equality graph (SetPaths compose transitively), so the pattern
    is ``setcomp_sensitive``: a set-comparison change dirties the sites
    whose roles live in a touched connected component of that graph
    (:meth:`repro.patterns.incremental.CheckScope.setcomp_closure`) —
    sites in untouched components keep their verdicts.  The SetPath graph
    is built once per run, not per site.
    """

    pattern_id = "P6"
    name = "Set-comparison constraints"
    description = (
        "An exclusion constraint combined with a (direct or implied) subset or "
        "equality path between the same arguments empties the subset side."
    )
    constraint_class = ExclusionConstraint
    setcomp_sensitive = True

    def check_scoped(self, schema: Schema, scope=None):
        sites = list(self.iter_sites(schema, scope))
        if not sites:
            return {}
        graph = (
            scope.setpath_graph(schema)
            if scope is not None
            else SetPathGraph.from_schema(schema)
        )
        results = {}
        for key, constraint in sites:
            found = self._check_constraint(schema, graph, constraint)
            if found:
                results[key] = tuple(found)
        return results

    def check_site(self, schema: Schema, site: ExclusionConstraint) -> list[Violation]:
        return self._check_constraint(schema, SetPathGraph.from_schema(schema), site)

    def _check_constraint(
        self, schema: Schema, graph: SetPathGraph, constraint: ExclusionConstraint
    ) -> list[Violation]:
        violations: list[Violation] = []
        for first, second in pairs(constraint.sequences):
            if constraint.is_role_exclusion:
                violations.extend(
                    self._check_role_pair(schema, graph, constraint, first, second)
                )
            else:
                violations.extend(
                    self._check_sequences(schema, graph, constraint, first, second)
                )
        # A role-level SetPath implied by a predicate subset and the
        # predicate-level SetPath itself describe the same conflict; keep one
        # violation per (flagged roles, responsible constraints).
        unique: dict[tuple, Violation] = {}
        for violation in violations:
            key = (violation.roles, frozenset(violation.constraints))
            unique.setdefault(key, violation)
        return list(unique.values())

    def _check_role_pair(
        self,
        schema: Schema,
        graph: SetPathGraph,
        constraint: ExclusionConstraint,
        first: RoleSequence,
        second: RoleSequence,
    ) -> list[Violation]:
        """Role exclusion: check role-level and aligned predicate-level paths."""
        found = list(self._check_sequences(schema, graph, constraint, first, second))
        first_pred = self._aligned_predicate(schema, first[0])
        second_pred = self._aligned_predicate(schema, second[0])
        if first_pred != second_pred:
            found.extend(
                self._check_sequences(schema, graph, constraint, first_pred, second_pred)
            )
        return found

    @staticmethod
    def _aligned_predicate(schema: Schema, role_name: str) -> RoleSequence:
        """The whole predicate of ``role_name``, with that role first.

        Putting the excluded role in the first column makes the SetPath query
        alignment-correct: a predicate subset whose columns *cross* the
        excluded roles is not a contradiction.
        """
        partner = schema.partner_role(role_name)
        return (role_name, partner.name)

    def _check_sequences(
        self,
        schema: Schema,
        graph: SetPathGraph,
        constraint: ExclusionConstraint,
        first: RoleSequence,
        second: RoleSequence,
    ) -> list[Violation]:
        found = []
        for path in graph.setpaths_between(first, second):
            found.append(self._violation_for_path(schema, constraint, path))
        return found

    def _violation_for_path(
        self, schema: Schema, constraint: ExclusionConstraint, path: SetPath
    ) -> Violation:
        empty_roles = self._roles_of(schema, path.source)
        fact_names = sorted({schema.role(name).fact_type for name in empty_roles})
        via = ", ".join(dict.fromkeys(path.origins))
        return self._violation(
            message=(
                f"the exclusion constraint <{constraint.label}> contradicts the "
                f"subset/equality path {self._render(path)} (via {via}): the "
                f"population of {path.source} must be both inside and disjoint "
                f"from {path.target}, so fact type(s) {', '.join(fact_names)} "
                "cannot be populated"
            ),
            roles=empty_roles,
            constraints=(constraint.label or "", *dict.fromkeys(path.origins)),
        )

    @staticmethod
    def _roles_of(schema: Schema, sequence: RoleSequence) -> tuple[str, ...]:
        """The unsatisfiable roles of the empty side: the whole fact type's
        roles when a predicate (or any of its roles) is forced empty."""
        fact_types = {schema.role(name).fact_type for name in sequence}
        roles: list[str] = []
        for fact_name in sorted(fact_types):
            roles.extend(schema.fact_type(fact_name).role_names)
        return tuple(dict.fromkeys(roles))

    @staticmethod
    def _render(path: SetPath) -> str:
        return f"{path.source} ⊆ ... ⊆ {path.target}"
