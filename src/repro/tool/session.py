"""Interactive modeling sessions with validation after every edit.

The paper's Sec. 4 experience report: running the patterns *interactively*
— after each modeling step — let the CCFORM lawyers catch contradictions
the moment they introduced them, and taught them to avoid the mistakes.
:class:`ModelingSession` reproduces that loop: every mutation re-validates
the schema and records which violations are *new* relative to the previous
step, so a tool (or the example script) can point at the edit that broke
the model.

The session's :class:`~repro.tool.validator.ValidatorSettings` select which
analysis families run after each edit — patterns, well-formedness
advisories, formation rules, propagation — and all of them are maintained
by the one site-based incremental engine attached to the session's schema,
so even a fully-loaded settings profile stays flat-cost per edit.  Long
sessions stay bounded in memory too: the engine checkpoints the schema's
change journal as it drains.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.orm.constraints import RingKind
from repro.orm.schema import Schema
from repro.orm.wellformed import Advisory
from repro.patterns.base import Violation
from repro.patterns.formation_rules import RuleFinding
from repro.tool.validator import ToolReport, Validator, ValidatorSettings


@dataclass
class EditEvent:
    """One modeling step and its validation outcome.

    Every enabled analysis family is diffed against the previous step, not
    just the unsatisfiability patterns: with ``wellformedness`` or
    ``formation_rules`` on, an edit that introduces (or resolves) an
    advisory or a rule finding shows that in the event too.
    """

    step: int
    action: str
    report: ToolReport
    new_violations: list[Violation] = field(default_factory=list)
    resolved_violations: list[Violation] = field(default_factory=list)
    new_advisories: list[Advisory] = field(default_factory=list)
    resolved_advisories: list[Advisory] = field(default_factory=list)
    new_rule_findings: list[RuleFinding] = field(default_factory=list)
    resolved_rule_findings: list[RuleFinding] = field(default_factory=list)

    @property
    def introduced_problem(self) -> bool:
        """Did this edit introduce at least one new violation?"""
        return bool(self.new_violations)

    @property
    def introduced_feedback(self) -> bool:
        """Did this edit introduce any new advisory or rule finding?"""
        return bool(self.new_advisories or self.new_rule_findings)


class ModelingSession:
    """A mutable schema whose every edit is validated immediately."""

    def __init__(
        self, name: str = "session", settings: ValidatorSettings | None = None
    ) -> None:
        self.schema = Schema(name)
        self.validator = Validator(settings)
        self.events: list[EditEvent] = []
        self._previous: list[Violation] = []
        self._previous_advisories: list[Advisory] = []
        self._previous_rules: list[RuleFinding] = []

    # -- editing verbs (each validates) ---------------------------------

    def add_entity(self, name: str, values=None) -> EditEvent:
        """Add an entity type and revalidate."""
        self.schema.add_entity_type(name, values)
        return self._record(f"add entity {name}")

    def add_value_type(self, name: str, values=None) -> EditEvent:
        """Add a value type and revalidate."""
        self.schema.add_value_type(name, values)
        return self._record(f"add value type {name}")

    def add_subtype(self, sub: str, super: str) -> EditEvent:
        """Add a subtype link and revalidate."""
        self.schema.add_subtype(sub, super)
        return self._record(f"add subtype {sub} < {super}")

    def add_fact(
        self, name: str, first: tuple[str, str], second: tuple[str, str]
    ) -> EditEvent:
        """Add a fact type and revalidate."""
        self.schema.add_fact_type(name, first[0], first[1], second[0], second[1])
        return self._record(f"add fact {name}")

    def add_mandatory(self, *roles: str) -> EditEvent:
        """Add a mandatory constraint and revalidate."""
        self.schema.add_mandatory(*roles)
        return self._record(f"add mandatory {'|'.join(roles)}")

    def add_uniqueness(self, *roles: str) -> EditEvent:
        """Add a uniqueness constraint and revalidate."""
        self.schema.add_uniqueness(*roles)
        return self._record(f"add uniqueness {','.join(roles)}")

    def add_frequency(self, roles, min: int, max: int | None = None) -> EditEvent:
        """Add a frequency constraint and revalidate."""
        self.schema.add_frequency(roles, min, max)
        # `max=None` means unbounded; render it as `*` so FC(n-0) — however
        # nonsensical — still reads differently from FC(n-).
        rendered_max = "*" if max is None else max
        return self._record(f"add frequency {roles} {min}..{rendered_max}")

    def add_exclusion(self, *sequences) -> EditEvent:
        """Add an exclusion constraint and revalidate."""
        self.schema.add_exclusion(*sequences)
        return self._record(f"add exclusion {sequences}")

    def add_exclusive_types(self, *types: str) -> EditEvent:
        """Add an exclusive-types constraint and revalidate."""
        self.schema.add_exclusive_types(*types)
        return self._record(f"add exclusive {'|'.join(types)}")

    def add_subset(self, sub, sup) -> EditEvent:
        """Add a subset constraint and revalidate."""
        self.schema.add_subset(sub, sup)
        return self._record(f"add subset {sub} < {sup}")

    def add_equality(self, first, second) -> EditEvent:
        """Add an equality constraint and revalidate."""
        self.schema.add_equality(first, second)
        return self._record(f"add equality {first} = {second}")

    def add_ring(self, kind: RingKind | str, first_role: str, second_role: str) -> EditEvent:
        """Add a ring constraint and revalidate."""
        self.schema.add_ring(kind, first_role, second_role)
        return self._record(f"add ring {kind} ({first_role}, {second_role})")

    # -- removal verbs (each validates; violations retract) ---------------

    def remove_constraint(self, label: str) -> EditEvent:
        """Remove a constraint by label and revalidate.

        Violations caused by the constraint disappear from the report and
        show up in the event's ``resolved_violations`` — the incremental
        engine retracts the verdicts anchored at the removed site.
        """
        self.schema.remove_constraint(label)
        return self._record(f"remove constraint {label}")

    def remove_subtype(self, sub: str, super: str) -> EditEvent:
        """Remove a subtype link and revalidate."""
        self.schema.remove_subtype(sub, super)
        return self._record(f"remove subtype {sub} < {super}")

    def remove_fact(self, name: str) -> EditEvent:
        """Remove a fact type (cascading over its roles' constraints)."""
        self.schema.remove_fact_type(name)
        return self._record(f"remove fact {name}")

    def remove_entity(self, name: str) -> EditEvent:
        """Remove an object type (cascading over facts, links, X-constraints)."""
        self.schema.remove_object_type(name)
        return self._record(f"remove entity {name}")

    # -- queries ----------------------------------------------------------

    def latest(self) -> EditEvent | None:
        """The most recent edit event (None before any edit)."""
        return self.events[-1] if self.events else None

    def problem_steps(self) -> list[EditEvent]:
        """All edits that introduced new violations."""
        return [event for event in self.events if event.introduced_problem]

    def transcript(self) -> str:
        """Human-readable session log (used by the example)."""
        lines = []
        for event in self.events:
            status = "!!" if event.introduced_problem else "ok"
            lines.append(f"[{status}] step {event.step}: {event.action}")
            for violation in event.new_violations:
                lines.append(f"      new: [{violation.pattern_id}] {violation.message}")
            for violation in event.resolved_violations:
                lines.append(f"      resolved: [{violation.pattern_id}]")
            for advisory in event.new_advisories:
                lines.append(f"      new: [{advisory.code}] {advisory.message}")
            for advisory in event.resolved_advisories:
                lines.append(f"      resolved: [{advisory.code}]")
            for finding in event.new_rule_findings:
                lines.append(f"      new: [{finding.rule_id}] {finding.message}")
            for finding in event.resolved_rule_findings:
                lines.append(f"      resolved: [{finding.rule_id}]")
        return "\n".join(lines)

    # -- internals ----------------------------------------------------------

    def _record(self, action: str) -> EditEvent:
        report = self.validator.validate(self.schema)
        current = report.pattern_report.violations
        previous_keys = {self._key(v) for v in self._previous}
        current_keys = {self._key(v) for v in current}
        new_advisories, resolved_advisories = self._diff(
            self._previous_advisories, report.advisories
        )
        new_rules, resolved_rules = self._diff(
            self._previous_rules, report.rule_findings
        )
        event = EditEvent(
            step=len(self.events) + 1,
            action=action,
            report=report,
            new_violations=[v for v in current if self._key(v) not in previous_keys],
            resolved_violations=[
                v for v in self._previous if self._key(v) not in current_keys
            ],
            new_advisories=new_advisories,
            resolved_advisories=resolved_advisories,
            new_rule_findings=new_rules,
            resolved_rule_findings=resolved_rules,
        )
        self.events.append(event)
        self._previous = list(current)
        self._previous_advisories = list(report.advisories)
        self._previous_rules = list(report.rule_findings)
        return event

    @staticmethod
    def _diff(previous: list, current: list) -> tuple[list, list]:
        """Multiset diff: (appeared, disappeared) between two finding lists.

        Advisories and rule findings are frozen (hashable) dataclasses, so
        Counter arithmetic handles equal duplicates exactly.
        """
        previous_counts = Counter(previous)
        current_counts = Counter(current)
        appeared = list((current_counts - previous_counts).elements())
        disappeared = list((previous_counts - current_counts).elements())
        return appeared, disappeared

    @staticmethod
    def _key(violation: Violation) -> tuple:
        return (
            violation.pattern_id,
            violation.roles,
            violation.types,
            violation.constraints,
        )
