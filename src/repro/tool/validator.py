"""The DogmaModeler-style validator (paper Fig. 15 and Sec. 4).

Fig. 15 shows DogmaModeler's *Validator Settings* window: a checkbox per
reasoning pattern, so modelers decide which validations run.
:class:`ValidatorSettings` is that window as data; :class:`Validator`
combines the pattern engine with the structural well-formedness advisories,
the formation-rule analysis and unsatisfiability propagation into one
report whose rendered form mirrors the generated messages the paper
highlights ("which constraints cause the unsatisfiability, the problems
with the other constraints, etc.").

Since every analysis is site-based (see :mod:`repro.patterns.base`), the
settings toggles select **analysis families inside one**
:class:`repro.patterns.incremental.IncrementalEngine` rather than choosing
between incremental and from-scratch code paths: patterns, advisories,
formation rules and propagation are all maintained from the same journal
drain.  The from-scratch analysis survives only as
:func:`reference_validate` — the testing/benchmark reference the
equivalence property tests compare the engine against; it is no longer a
public settings toggle.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.orm.schema import Schema
from repro.orm.wellformed import Advisory, check_wellformedness
from repro.patterns.base import ValidationReport
from repro.patterns.engine import ALL_IDS, PATTERN_IDS, PatternEngine, pattern_by_id
from repro.patterns.formation_rules import RuleFinding, check_formation_rules
from repro.patterns.incremental import IncrementalEngine
from repro.patterns.propagation import PropagationResult, propagate


@dataclass
class ValidatorSettings:
    """The Fig. 15 settings window as data.

    ``patterns`` maps pattern id to enabled (the paper's nine are ticked by
    default; the Sec. 5 extension patterns X1-X3 exist but start unticked);
    ``wellformedness``, ``formation_rules`` and ``propagation`` toggle the
    auxiliary analysis families.  All enabled families are maintained by
    the dependency-indexed
    :class:`repro.patterns.incremental.IncrementalEngine` — per-edit cost
    scales with the edit, not the schema.  (The pre-PR-4 ``incremental``
    toggle is retired; the from-scratch path lives on only as the
    test-reference :func:`reference_validate`.)
    """

    patterns: dict[str, bool] = field(
        default_factory=lambda: {pattern_id: True for pattern_id in PATTERN_IDS}
    )
    wellformedness: bool = True
    formation_rules: bool = False  # style feedback is opt-in, as in the tool
    propagation: bool = False  # blast-radius derivation is opt-in too

    def enable(self, pattern_id: str) -> None:
        """Tick one pattern checkbox (paper patterns or X extensions)."""
        pattern_by_id(pattern_id)
        self.patterns[pattern_id] = True

    def disable(self, pattern_id: str) -> None:
        """Untick one pattern checkbox."""
        pattern_by_id(pattern_id)
        self.patterns[pattern_id] = False

    def enable_extensions(self) -> None:
        """Tick all Sec. 5 extension patterns at once."""
        from repro.patterns.extensions import EXTENSION_IDS

        for pattern_id in EXTENSION_IDS:
            self.patterns[pattern_id] = True

    def enabled_ids(self) -> list[str]:
        """Pattern ids currently ticked, in registry order."""
        return [pid for pid in ALL_IDS if self.patterns.get(pid, False)]

    def family_key(self) -> tuple:
        """Everything an attached engine's configuration depends on."""
        return (
            tuple(self.enabled_ids()),
            self.wellformedness,
            self.formation_rules,
            self.propagation,
        )


@dataclass
class ToolReport:
    """Everything one validation run produced."""

    schema_name: str
    pattern_report: ValidationReport
    advisories: list[Advisory] = field(default_factory=list)
    rule_findings: list[RuleFinding] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    propagation: PropagationResult | None = None

    @property
    def ok(self) -> bool:
        """True when no unsatisfiability was detected (advisories may exist)."""
        return self.pattern_report.is_satisfiable

    def render(self) -> str:
        """The DogmaModeler-style message list.

        One renderer serves both the local and the remote CLI:
        :func:`render_report_payload` over :func:`report_to_payload`, plus
        the local-only footer (checked patterns and timing, which the wire
        payload deliberately omits).
        """
        return "\n".join(
            (
                render_report_payload(report_to_payload(self)),
                f"(checked patterns: {', '.join(self.pattern_report.patterns_run)}; "
                f"{self.elapsed_seconds * 1000:.1f} ms)",
            )
        )


def report_to_payload(report: ToolReport) -> dict:
    """Serialize a :class:`ToolReport` to its machine-readable JSON shape.

    This one shape is shared by the CLI's ``--format json`` output and the
    wire protocol (:mod:`repro.server.protocol` re-exports it) — local and
    remote reports are byte-comparable.
    """
    payload = {
        "schema": report.schema_name,
        "satisfiable_by_patterns": report.ok,
        "violations": [
            {
                "pattern": violation.pattern_id,
                "message": violation.message,
                "roles": list(violation.roles),
                "types": list(violation.types),
                "constraints": list(violation.constraints),
            }
            for violation in report.pattern_report.violations
        ],
        "advisories": [
            {"code": advisory.code, "message": advisory.message}
            for advisory in report.advisories
        ],
        "formation_rules": [
            {
                "rule": finding.rule_id,
                "relevant": finding.relevant,
                "message": finding.message,
            }
            for finding in report.rule_findings
        ],
    }
    if report.propagation is not None:
        propagation = report.propagation
        payload["propagated"] = {
            "direct_roles": sorted(propagation.direct_roles),
            "direct_types": sorted(propagation.direct_types),
            "unsat_roles": sorted(propagation.all_unsat_roles()),
            "unsat_types": sorted(propagation.all_unsat_types()),
            "derived": [
                {"element": item.element, "kind": item.kind, "via": item.via}
                for item in propagation.derived
            ],
        }
    return payload


def render_report_payload(payload: dict) -> str:
    """The DogmaModeler-style text rendering of a report payload.

    Used by :meth:`ToolReport.render` locally and by the remote CLI path
    (which only ever sees the JSON shape) — one renderer, no drift.
    """
    lines = [f"Validation of schema '{payload['schema']}'"]
    lines.append("=" * len(lines[0]))
    violations = payload["violations"]
    if violations:
        lines.append(f"UNSATISFIABLE: {len(violations)} violation(s)")
        for violation in violations:
            lines.append(f"  [{violation['pattern']}] {violation['message']}")
    else:
        lines.append("No unsatisfiability pattern fired.")
    if payload["advisories"]:
        lines.append(f"{len(payload['advisories'])} structural advisory(ies):")
        for advisory in payload["advisories"]:
            lines.append(f"  [{advisory['code']}] {advisory['message']}")
    if payload["formation_rules"]:
        relevant = sum(1 for f in payload["formation_rules"] if f["relevant"])
        style_only = len(payload["formation_rules"]) - relevant
        lines.append(
            f"{relevant} relevant formation-rule finding(s), {style_only} style-only:"
        )
        for finding in payload["formation_rules"]:
            marker = "!" if finding["relevant"] else "·"
            lines.append(f"  {marker} [{finding['rule']}] {finding['message']}")
    if "propagated" in payload:
        propagated = payload["propagated"]
        derived = propagated["derived"]
        lines.append(
            f"Propagation: {len(propagated['direct_roles'])}+"
            f"{len(propagated['direct_types'])} direct, "
            f"{len(derived)} derived unsatisfiable element(s)"
        )
        for item in derived:
            lines.append(f"  {item['kind']} '{item['element']}' — {item['via']}")
    return "\n".join(lines)


def report_from_engine(
    engine: IncrementalEngine, settings: ValidatorSettings
) -> ToolReport:
    """Assemble a :class:`ToolReport` from a (refreshed) engine's stores,
    exposing exactly the families the settings enable.

    Shared by :class:`Validator` and the multi-session
    :class:`repro.server.ValidationService` so both render identical
    reports from the same engine state.
    """
    return ToolReport(
        schema_name=engine.schema.metadata.name,
        pattern_report=engine.report(),
        advisories=engine.advisories() if settings.wellformedness else [],
        rule_findings=engine.rule_findings() if settings.formation_rules else [],
        propagation=engine.propagation() if settings.propagation else None,
    )


def reference_validate(
    schema: Schema, settings: ValidatorSettings | None = None
) -> ToolReport:
    """From-scratch analysis of ``schema`` under ``settings``.

    The **testing reference**: every enabled family is recomputed over the
    whole schema with no engine state involved.  The equivalence property
    tests (``tests/patterns/test_incremental.py``,
    ``tests/server/test_service.py``) and the benchmark baseline compare
    the incremental engine against this; it is deliberately not reachable
    from :class:`ValidatorSettings` or the CLI any more.
    """
    settings = settings or ValidatorSettings()
    started = time.perf_counter()
    pattern_report = PatternEngine(enabled=tuple(settings.enabled_ids())).check(schema)
    report = ToolReport(
        schema_name=schema.metadata.name,
        pattern_report=pattern_report,
        advisories=check_wellformedness(schema) if settings.wellformedness else [],
        rule_findings=(
            check_formation_rules(schema) if settings.formation_rules else []
        ),
        propagation=(
            propagate(schema, pattern_report) if settings.propagation else None
        ),
    )
    report.elapsed_seconds = time.perf_counter() - started
    return report


class Validator:
    """One-call validation of a schema under configurable settings.

    The validator keeps one :class:`IncrementalEngine` attached to the
    last-validated schema object, configured with exactly the enabled
    analysis families: repeatedly validating the *same* (mutating) schema —
    the :class:`repro.tool.session.ModelingSession` loop — only pays for
    the edits made since the previous call, for patterns, advisories,
    formation rules and propagation alike.  Validating a different schema
    object, or changing any setting, transparently rebuilds the engine.
    """

    def __init__(self, settings: ValidatorSettings | None = None) -> None:
        self.settings = settings or ValidatorSettings()
        self._incremental: IncrementalEngine | None = None
        self._engine_key: tuple | None = None

    def validate(self, schema: Schema) -> ToolReport:
        """Run every enabled analysis over ``schema``."""
        started = time.perf_counter()
        report = report_from_engine(self._engine_for(schema), self.settings)
        report.elapsed_seconds = time.perf_counter() - started
        return report

    def _engine_for(self, schema: Schema) -> IncrementalEngine:
        """The engine attached to ``schema`` under the current settings,
        rebuilt when the schema object or any toggle changed."""
        key = self.settings.family_key()
        engine = self._incremental
        if engine is None or engine.schema is not schema or self._engine_key != key:
            engine = IncrementalEngine(
                schema,
                enabled=tuple(self.settings.enabled_ids()),
                advisories=self.settings.wellformedness,
                formation_rules=self.settings.formation_rules,
                propagation=self.settings.propagation,
            )
            self._incremental = engine
            self._engine_key = key
            return engine
        engine.refresh()
        return engine
