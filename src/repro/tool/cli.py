"""``orm-validate`` — validate an ORM schema file from the command line.

Usage::

    orm-validate schema.orm                      # all nine patterns
    orm-validate schema.orm --patterns P2,P9     # a subset (Fig. 15 style)
    orm-validate schema.orm --formation-rules    # include Sec. 3 analysis
    orm-validate schema.orm --no-advisories      # skip the W01-W07 advisories
    orm-validate schema.orm --verbalize          # pseudo-NL rendering first
    orm-validate schema.orm --complete 3         # add bounded complete check
    orm-validate schema.orm --format json
    orm-validate a.orm b.orm c.orm --jobs 4      # batch: one session per file,
                                                 # parallel batched drains
    orm-validate --batch schema.orm              # force batch mode for one file

With several schema files (or ``--batch``) validation runs through the
multi-session :class:`repro.server.ValidationService`: one session per
file, journals drained in parallel batches on a thread pool (``--jobs``).
With ``--server URL`` the batch is validated by a *remote*
``orm-validate serve`` instance over the JSON wire protocol instead of an
in-process service.

The service itself is started with the ``serve`` subcommand::

    orm-validate serve --host 127.0.0.1 --port 8099
    orm-validate --batch --server http://127.0.0.1:8099 a.orm b.orm

See :mod:`repro.server.wire` for the endpoint/JSON reference.

**Deployment.**  ``serve`` defaults to a single-process service bound to
loopback.  The two scale/hardening axes:

* ``--workers N`` routes sessions to N worker *subprocesses* (stable
  session-name hash, same wire protocol; see
  :mod:`repro.server.workers`) — one GIL per worker, so concurrent
  drains use N cores instead of one, and a crashed worker is replaced
  with its sessions re-homed by journal replay.  Single-process mode
  (``--workers 0``) remains the low-latency default for one-core or
  embedded use.
* ``--token SECRET`` (or the ``ORM_VALIDATE_TOKEN`` environment
  variable) requires ``Authorization: Bearer SECRET`` on every ``/v1/*``
  request (``GET /healthz`` stays open for liveness probes).  Binding
  beyond loopback **requires** a token — ``serve`` refuses to start
  otherwise unless ``--allow-unauthenticated`` spells out the intent.
  Clients pass the same token via ``--token`` (or the env var).

Pollers should use the report ETag: every ``/v1/report`` response carries
a ``mark``; echo it as ``if_mark`` and an unchanged session answers
``{"unchanged": true}`` without re-serializing the report
(:meth:`repro.server.client.ServiceClient.poll_report`).

Exit status: 0 when no unsatisfiability was detected, 1 otherwise (any
file, in batch mode), 2 on input errors — so the tool slots into CI for
schema repositories.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Any

from repro.exceptions import ParseError, ReproError
from repro.io.dsl import parse_schema
from repro.orm.verbalize import verbalize_schema
from repro.patterns.engine import PATTERN_IDS
from repro.tool.validator import Validator, ValidatorSettings


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for the tests)."""
    parser = argparse.ArgumentParser(
        prog="orm-validate",
        description="Detect unsatisfiable roles and object types in an ORM schema "
        "(the nine patterns of Jarrar & Heymans, EDBT 2006).",
    )
    parser.add_argument(
        "schema",
        type=Path,
        nargs="+",
        help="schema file(s) in the ORM text DSL; several files (or --batch) "
        "validate through the multi-session service",
    )
    parser.add_argument(
        "--batch",
        action="store_true",
        help="serve the schemas from a multi-session ValidationService "
        "(one session per file, batched parallel journal drains) even "
        "for a single file",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="drain-pool width in batch mode (0 = drain inline; default: "
        "thread-pool default)",
    )
    parser.add_argument(
        "--server",
        metavar="URL",
        default=None,
        help="validate through a remote 'orm-validate serve' instance at URL "
        "(e.g. http://127.0.0.1:8099) instead of in-process; implies "
        "--batch",
    )
    parser.add_argument(
        "--token",
        metavar="SECRET",
        default=None,
        help="bearer token for --server (default: $ORM_VALIDATE_TOKEN)",
    )
    parser.add_argument(
        "--patterns",
        default=",".join(PATTERN_IDS),
        help="comma-separated pattern ids to enable (default: all nine)",
    )
    advisory_group = parser.add_mutually_exclusive_group()
    advisory_group.add_argument(
        "--advisories",
        dest="advisories",
        action="store_true",
        default=True,
        help="run the structural well-formedness advisories (default)",
    )
    advisory_group.add_argument(
        "--no-advisories",
        "--no-wellformedness",  # pre-PR-2 spelling, kept for compatibility
        dest="advisories",
        action="store_false",
        help="skip the structural advisories",
    )
    parser.add_argument(
        "--formation-rules",
        action="store_true",
        help="also run Halpin's formation rules and RIDL-A analysis (Sec. 3)",
    )
    parser.add_argument(
        "--no-incremental",
        action="store_true",
        help=argparse.SUPPRESS,  # retired; accepted only to print a notice
    )
    parser.add_argument(
        "--verbalize",
        action="store_true",
        help="print the pseudo-natural-language reading of the schema first",
    )
    parser.add_argument(
        "--extensions",
        action="store_true",
        help="also run the Sec. 5 extension patterns X1-X3",
    )
    parser.add_argument(
        "--propagate",
        action="store_true",
        help="derive the full set of unsatisfiable elements from the findings",
    )
    parser.add_argument(
        "--repairs",
        action="store_true",
        help="print candidate repairs under each violation",
    )
    parser.add_argument(
        "--complete",
        type=int,
        metavar="N",
        default=None,
        help="additionally run the bounded complete model finder with domain "
        "bound N (slower; confirms or refines the pattern verdicts).  In "
        "batch/server mode this uses the warm per-session /v1/check "
        "reasoner.  A result of 'unknown' means the solver's decision "
        "budget ran out before any domain size answered 'sat'",
    )
    parser.add_argument(
        "--goal",
        choices=("strong", "concept", "weak", "global"),
        default="strong",
        help="which satisfiability goal --complete decides (default: strong "
        "= every role populated)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format",
    )
    return parser


def _settings_from_args(args) -> ValidatorSettings | None:
    """The Fig. 15 profile the flags select (None after printing an error)."""
    settings = ValidatorSettings()
    wanted = [part.strip() for part in args.patterns.split(",") if part.strip()]
    try:
        for pattern_id in PATTERN_IDS:
            if pattern_id in wanted:
                settings.enable(pattern_id)
            else:
                settings.disable(pattern_id)
        unknown = [pid for pid in wanted if pid not in PATTERN_IDS]
        if unknown:
            raise KeyError(unknown[0])
    except KeyError as error:
        print(f"error: unknown pattern id {error}", file=sys.stderr)
        return None
    settings.wellformedness = args.advisories
    settings.formation_rules = args.formation_rules
    settings.propagation = args.propagate
    if args.no_incremental:
        print(
            "warning: --no-incremental is deprecated and ignored — the "
            "site-based incremental engine is always used (the from-scratch "
            "path survives only as the test reference "
            "repro.tool.validator.reference_validate)",
            file=sys.stderr,
        )
    if args.extensions:
        settings.enable_extensions()
    return settings


def _load_schema(path: Path):
    """Parse one schema file (None after printing an error)."""
    try:
        text = path.read_text()
    except OSError as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        return None
    try:
        return parse_schema(text)
    except (ParseError, ReproError) as error:
        print(f"error: {path}: {error}", file=sys.stderr)
        return None


def _report_payload(schema, report, complete_result=None) -> dict:
    """The machine-readable form of one ToolReport (``--format json``).

    The shape is owned by :func:`repro.tool.validator.report_to_payload`
    — the wire protocol and the CLI print the same JSON.
    """
    from repro.tool.validator import report_to_payload

    payload = report_to_payload(report)
    payload["complete_check"] = complete_result
    return payload


def _run_batch(paths: list[Path], settings: ValidatorSettings, args) -> int:
    """Validate many schema files through the multi-session service."""
    from repro.server import ValidationService

    if args.verbalize or args.repairs:
        print(
            "error: --verbalize/--repairs are single-schema options "
            "(not available with --batch)",
            file=sys.stderr,
        )
        return 2
    schemas = []
    for path in paths:
        schema = _load_schema(path)
        if schema is None:
            return 2
        schemas.append((path, schema))
    if args.server is not None:
        return _run_remote_batch(schemas, settings, args)
    verdicts: list[dict | None] = [None] * len(schemas)
    with ValidationService(settings=settings, max_workers=args.jobs) as service:
        handles = [
            service.open(f"{index}:{path}", schema=schema)
            for index, (path, schema) in enumerate(schemas)
        ]
        service.drain()
        reports = [handle.report() for handle in handles]
        if args.complete is not None:
            from repro.server import protocol

            verdicts = [
                protocol.verdict_to_payload(
                    service.check(handle.name, args.goal, max_domain=args.complete)
                )
                for handle in handles
            ]
    unsat = sum(1 for report in reports if not report.ok)
    if args.format == "json":
        print(
            json.dumps(
                {
                    "schemas": [
                        _report_payload(schema, report, verdict)
                        for (_, schema), report, verdict in zip(
                            schemas, reports, verdicts
                        )
                    ],
                    "unsatisfiable": unsat,
                },
                indent=2,
            )
        )
    else:
        for report, verdict in zip(reports, verdicts):
            print(report.render())
            if verdict is not None:
                _print_verdict(verdict, args)
            print()
        print(f"{len(reports)} schema(s) validated, {unsat} unsatisfiable")
    return 1 if unsat else 0


def _print_verdict(verdict: dict, args) -> None:
    """Render one /v1/check verdict payload in the text format."""
    print(
        f"Complete bounded check ({args.goal}, domain<={args.complete}): "
        f"{verdict['status']}"
    )
    if verdict["status"] == "unknown":
        print(
            "  (decision budget exhausted at size(s) "
            f"{verdict['inconclusive_sizes']} — neither satisfiability nor "
            "bounded unsatisfiability established)"
        )


def _run_remote_batch(schemas, settings: ValidatorSettings, args) -> int:
    """Validate a batch on a remote ``orm-validate serve`` instance."""
    import uuid

    from repro.server import WireError
    from repro.server.client import ServiceClient, WireTransportError
    from repro.tool.validator import render_report_payload

    # A per-run nonce keeps concurrent (or re-run) CLI batches against one
    # server from colliding on session names.
    run_id = uuid.uuid4().hex[:8]
    payloads = []
    names: list[str] = []
    token = args.token or os.environ.get("ORM_VALIDATE_TOKEN") or None
    try:
        with ServiceClient(args.server, token=token) as client:
            client.healthz()  # fail fast on a dead/unreachable server
            try:
                for index, (path, schema) in enumerate(schemas):
                    name = f"cli:{run_id}:{index}:{path}"
                    client.open(name, settings=settings, schema=schema)
                    names.append(name)
                client.drain(names)
                verdicts = [None] * len(names)
                if args.complete is not None:
                    verdicts = [
                        client.check(name, args.goal, max_domain=args.complete)
                        for name in names
                    ]
                payloads = []
                for name, verdict in zip(names, verdicts):
                    payload = client.close(name)
                    payload["complete_check"] = verdict
                    payloads.append(payload)
            finally:
                # On any mid-batch failure, close what was opened so the
                # server does not accumulate orphaned sessions.
                for name in names[len(payloads):]:
                    try:
                        client.close(name)
                    except (WireError, WireTransportError):
                        pass
    except (WireError, WireTransportError, ValueError) as error:
        print(f"error: remote validation via {args.server}: {error}", file=sys.stderr)
        return 2
    unsat = sum(1 for payload in payloads if not payload["satisfiable_by_patterns"])
    if args.format == "json":
        print(json.dumps({"schemas": payloads, "unsatisfiable": unsat}, indent=2))
    else:
        for payload in payloads:
            print(render_report_payload(payload))
            if payload.get("complete_check") is not None:
                _print_verdict(payload["complete_check"], args)
            print()
        print(
            f"{len(payloads)} schema(s) validated remotely via {args.server}, "
            f"{unsat} unsatisfiable"
        )
    return 1 if unsat else 0


def _bind_is_loopback(host: str) -> bool:
    """True only when the bind address cannot be reached off-host.

    Hostnames other than ``localhost`` — and the wildcard binds ``""`` /
    ``0.0.0.0`` / ``::`` — count as reachable, so the token requirement
    errs on the safe side.
    """
    if host == "localhost":
        return True
    import ipaddress

    try:
        return ipaddress.ip_address(host).is_loopback
    except ValueError:
        return False


def _run_serve(argv: list[str]) -> int:
    """The ``orm-validate serve`` subcommand: the asyncio wire front."""
    import asyncio

    from repro.server.wire import WireServer

    parser = argparse.ArgumentParser(
        prog="orm-validate serve",
        description="Serve the multi-session validation service over HTTP "
        "(JSON wire protocol; see repro.server.wire).  Loopback-only and "
        "single-process by default; scale out with --workers, open up "
        "(with a token) via --host/--token.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8099, help="bind port (0 = pick free)")
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="route sessions to N worker subprocesses (one GIL each; "
        "crashed workers are replaced and their sessions re-homed); "
        "0 = single-process service (default)",
    )
    parser.add_argument(
        "--data-dir",
        metavar="DIR",
        default=None,
        help="durable session logs: fsync every acknowledged open/edit to "
        "per-session segment logs under DIR and recover all sessions on "
        "restart (requires --workers >= 1)",
    )
    parser.add_argument(
        "--token",
        metavar="SECRET",
        default=None,
        help="require 'Authorization: Bearer SECRET' on every /v1/* request "
        "(default: $ORM_VALIDATE_TOKEN; /healthz stays open)",
    )
    parser.add_argument(
        "--allow-unauthenticated",
        action="store_true",
        help="serve beyond loopback without a token (NOT recommended; "
        "without this flag a non-loopback bind refuses to start untokened)",
    )
    parser.add_argument(
        "--drain-interval",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="period of the background service tick (0 disables it)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="drain/refresh pool width per service (0 = inline drains)",
    )
    parser.add_argument(
        "--max-live-engines", type=int, default=16, help="live-engine count cap"
    )
    parser.add_argument(
        "--max-live-sites",
        type=int,
        default=None,
        help="optional live-engine budget in check sites (weighted eviction)",
    )
    args = parser.parse_args(argv)
    if args.workers < 0:
        print(
            f"error: --workers must be >= 0, got {args.workers}", file=sys.stderr
        )
        return 2
    if args.data_dir is not None and args.workers < 1:
        print(
            "error: --data-dir (durable session logs) requires a "
            "multi-process deployment: pass --workers >= 1",
            file=sys.stderr,
        )
        return 2
    token = args.token or os.environ.get("ORM_VALIDATE_TOKEN") or None
    if token is None and not _bind_is_loopback(args.host) and not args.allow_unauthenticated:
        print(
            f"error: refusing to bind {args.host!r} without auth — the wire "
            "protocol would be open to the network.  Set --token (or "
            "ORM_VALIDATE_TOKEN), or pass --allow-unauthenticated to "
            "accept that explicitly.",
            file=sys.stderr,
        )
        return 2

    async def _serve() -> None:
        extra: dict[str, Any] = {}
        if args.data_dir is not None:
            extra["data_dir"] = args.data_dir
        server = WireServer(
            host=args.host,
            port=args.port,
            workers=args.workers,
            token=token,
            drain_interval=args.drain_interval or None,
            max_live_engines=args.max_live_engines,
            max_live_sites=args.max_live_sites,
            max_workers=args.jobs,
            **extra,
        )
        host, port = await server.start()
        mode = f"{args.workers} worker processes" if args.workers else "single process"
        auth = "token auth" if token else "no auth"
        print(
            f"orm-validate serve: listening on http://{host}:{port} "
            f"({mode}, {auth})",
            flush=True,
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("orm-validate serve: shut down", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the exit status."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return _run_serve(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    settings = _settings_from_args(args)
    if settings is None:
        return 2
    if args.batch or args.server is not None or len(args.schema) > 1:
        return _run_batch(args.schema, settings, args)

    schema = _load_schema(args.schema[0])
    if schema is None:
        return 2
    report = Validator(settings).validate(schema)

    complete_result = None
    if args.complete is not None:
        from repro.reasoner import BoundedModelFinder

        verdict = BoundedModelFinder(schema).check(args.goal, max_domain=args.complete)
        complete_result = {
            "goal": args.goal,
            "status": verdict.status,
            "domain_bound": args.complete,
            "witness": verdict.witness.describe() if verdict.witness else None,
        }

    if args.format == "json":
        print(json.dumps(_report_payload(schema, report, complete_result), indent=2))
    else:
        if args.verbalize:
            print("Schema verbalization:")
            for line in verbalize_schema(schema):
                print(f"  {line}")
            print()
        print(report.render())
        if args.repairs and report.pattern_report.violations:
            from repro.patterns import suggest_repairs

            print("Candidate repairs:")
            for violation in report.pattern_report.violations:
                print(f"  [{violation.pattern_id}]")
                for suggestion in suggest_repairs(violation):
                    print(f"    - {suggestion}")
        if complete_result is not None:
            print(
                f"Complete bounded check ({args.goal}, domain<={args.complete}): "
                f"{complete_result['status']}"
            )
            if complete_result["witness"]:
                print(f"  witness: {complete_result['witness']}")
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
