"""DogmaModeler-style tooling: validator, interactive session, CLI."""

from repro.tool.session import EditEvent, ModelingSession
from repro.tool.validator import (
    ToolReport,
    Validator,
    ValidatorSettings,
    reference_validate,
)

__all__ = [
    "EditEvent",
    "ModelingSession",
    "ToolReport",
    "Validator",
    "ValidatorSettings",
    "reference_validate",
]
