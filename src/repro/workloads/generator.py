"""Random ORM schema generation and pattern-fault injection.

Two evaluation needs (DESIGN.md experiment index, Sec. 4 claims):

* **Scaling workloads** — schemas of parametric size to measure that pattern
  checking stays cheap as schemas grow (`generate_schema`);
* **Fault injection** — planting one specific pattern's contradiction into a
  clean schema so detection rates and the patterns-as-prefilter pipeline can
  be quantified (`inject_fault`), mirroring the modeling mistakes the paper
  reports from the CCFORM case study.

Everything is seeded and deterministic: the same config yields the same
schema, which benchmarks and property tests rely on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.orm.constraints import RingKind
from repro.orm.schema import Schema


@dataclass
class GeneratorConfig:
    """Knobs of the random schema generator."""

    num_types: int = 10
    num_facts: int = 8
    subtype_probability: float = 0.25
    value_probability: float = 0.15
    max_values: int = 4
    mandatory_probability: float = 0.3
    uniqueness_probability: float = 0.4
    frequency_probability: float = 0.15
    exclusion_probability: float = 0.2
    setcomp_probability: float = 0.15
    ring_probability: float = 0.2
    seed: int = 0


@dataclass
class InjectedFault:
    """Record of one planted contradiction."""

    pattern_id: str
    description: str
    unsat_roles: tuple[str, ...] = ()
    unsat_types: tuple[str, ...] = ()
    added_elements: tuple[str, ...] = field(default=())


def generate_schema(config: GeneratorConfig) -> Schema:
    """Generate a random schema; may or may not be satisfiable.

    Constraints are only placed where they make structural sense (e.g.
    exclusions between roles of subtype-compatible players), so violations
    that appear come from genuine constraint interaction — the same way a
    human modeler produces them.
    """
    rng = random.Random(config.seed)
    schema = Schema(f"random_{config.seed}")
    type_names = [f"T{i}" for i in range(config.num_types)]
    for index, name in enumerate(type_names):
        if rng.random() < config.value_probability:
            pool = [f"{name.lower()}v{k}" for k in range(rng.randint(1, config.max_values))]
            schema.add_entity_type(name, pool)
        else:
            schema.add_entity_type(name)
        # Subtype edges only point to earlier types: guaranteed acyclic.
        if index > 0 and rng.random() < config.subtype_probability:
            schema.add_subtype(name, type_names[rng.randrange(index)])

    role_counter = 0
    for fact_index in range(config.num_facts):
        first_player = rng.choice(type_names)
        second_player = rng.choice(type_names)
        first_role = f"r{role_counter}"
        second_role = f"r{role_counter + 1}"
        role_counter += 2
        schema.add_fact_type(
            f"F{fact_index}", first_role, first_player, second_role, second_player
        )
        if rng.random() < config.mandatory_probability:
            schema.add_mandatory(rng.choice((first_role, second_role)))
        if rng.random() < config.uniqueness_probability:
            schema.add_uniqueness(rng.choice((first_role, second_role)))
        if rng.random() < config.frequency_probability:
            low = rng.randint(1, 3)
            schema.add_frequency(
                rng.choice((first_role, second_role)), low, low + rng.randint(0, 3)
            )
        if first_player == second_player and rng.random() < config.ring_probability:
            kinds = rng.sample(list(RingKind), k=rng.randint(1, 2))
            for kind in kinds:
                schema.add_ring(kind, first_role, second_role)

    _add_cross_fact_constraints(schema, rng, config)
    return schema


def _compatible_role_pairs(schema: Schema) -> list[tuple[str, str]]:
    """Role pairs from different fact types whose players are related."""
    pairs = []
    roles = schema.roles()
    for index, first in enumerate(roles):
        for second in roles[index + 1:]:
            if first.fact_type == second.fact_type:
                continue
            related = (
                first.player == second.player
                or schema.is_subtype_of(first.player, second.player)
                or schema.is_subtype_of(second.player, first.player)
            )
            if related:
                pairs.append((first.name, second.name))
    return pairs


def _parallel_fact_pairs(schema: Schema) -> list[tuple[str, str]]:
    """Pairs of fact types with identical player signatures."""
    pairs = []
    facts = schema.fact_types()
    for index, first in enumerate(facts):
        for second in facts[index + 1:]:
            if first.players == second.players:
                pairs.append((first.name, second.name))
    return pairs


def _add_cross_fact_constraints(
    schema: Schema, rng: random.Random, config: GeneratorConfig
) -> None:
    for first_role, second_role in _compatible_role_pairs(schema):
        if rng.random() < config.exclusion_probability:
            schema.add_exclusion(first_role, second_role)
    for first_fact, second_fact in _parallel_fact_pairs(schema):
        if rng.random() < config.setcomp_probability:
            first = schema.fact_type(first_fact).role_names
            second = schema.fact_type(second_fact).role_names
            if rng.random() < 0.5:
                schema.add_subset(first, second)
            else:
                schema.add_equality(first, second)


# ----------------------------------------------------------------------
# fault injection
# ----------------------------------------------------------------------


def inject_fault(schema: Schema, pattern_id: str, rng: random.Random) -> InjectedFault:
    """Plant a contradiction that exactly pattern ``pattern_id`` detects.

    All injected elements are fresh (prefixed ``inj_``) so injection never
    interferes with the existing schema and multiple faults can coexist.
    """
    injectors = {
        "P1": _inject_p1,
        "P2": _inject_p2,
        "P3": _inject_p3,
        "P4": _inject_p4,
        "P5": _inject_p5,
        "P6": _inject_p6,
        "P7": _inject_p7,
        "P8": _inject_p8,
        "P9": _inject_p9,
    }
    try:
        injector = injectors[pattern_id]
    except KeyError:
        raise KeyError(f"unknown pattern id: {pattern_id!r}") from None
    return injector(schema, rng)


def _fresh(schema: Schema, stem: str) -> str:
    index = 0
    while True:
        name = f"inj_{stem}{index}"
        taken = (
            schema.has_object_type(name)
            or schema.has_role(name)
            or any(fact.name == name for fact in schema.fact_types())
        )
        if not taken:
            return name
        index += 1


def _fresh_fact(schema: Schema, stem: str, first_player: str, second_player: str):
    name = _fresh(schema, stem)
    first_role = _fresh(schema, f"{stem}_a")
    second_role = _fresh(schema, f"{stem}_b")
    schema.add_fact_type(name, first_role, first_player, second_role, second_player)
    return name, first_role, second_role


def _inject_p1(schema: Schema, rng: random.Random) -> InjectedFault:
    top_a = _fresh(schema, "topA")
    top_b = _fresh(schema, "topB")
    child = _fresh(schema, "orphan")
    for name in (top_a, top_b, child):
        schema.add_entity_type(name)
    schema.add_subtype(child, top_a)
    schema.add_subtype(child, top_b)
    return InjectedFault(
        "P1",
        f"{child} under unrelated tops {top_a}, {top_b}",
        unsat_types=(child,),
        added_elements=(top_a, top_b, child),
    )


def _inject_p2(schema: Schema, rng: random.Random) -> InjectedFault:
    top = _fresh(schema, "top")
    left = _fresh(schema, "left")
    right = _fresh(schema, "right")
    child = _fresh(schema, "both")
    for name in (top, left, right, child):
        schema.add_entity_type(name)
    schema.add_subtype(left, top)
    schema.add_subtype(right, top)
    schema.add_subtype(child, left)
    schema.add_subtype(child, right)
    schema.add_exclusive_types(left, right)
    return InjectedFault(
        "P2",
        f"{child} under exclusive {left} X {right}",
        unsat_types=(child,),
        added_elements=(top, left, right, child),
    )


def _inject_p3(schema: Schema, rng: random.Random) -> InjectedFault:
    player = _fresh(schema, "actor")
    partner = _fresh(schema, "target")
    schema.add_entity_type(player)
    schema.add_entity_type(partner)
    _, mandatory_role, _ = _fresh_fact(schema, "p3f1", player, partner)
    _, excluded_role, _ = _fresh_fact(schema, "p3f2", player, partner)
    schema.add_mandatory(mandatory_role)
    schema.add_exclusion(mandatory_role, excluded_role)
    return InjectedFault(
        "P3",
        f"mandatory {mandatory_role} excluded with {excluded_role}",
        unsat_roles=(excluded_role,),
        added_elements=(player, partner),
    )


def _inject_p4(schema: Schema, rng: random.Random) -> InjectedFault:
    pool_size = rng.randint(1, 3)
    player = _fresh(schema, "freqsrc")
    valued = _fresh(schema, "valued")
    schema.add_entity_type(player)
    schema.add_entity_type(valued, [f"{valued}v{k}" for k in range(pool_size)])
    _, role, partner_role = _fresh_fact(schema, "p4f", player, valued)
    schema.add_frequency(role, pool_size + 1, pool_size + 2)
    return InjectedFault(
        "P4",
        f"FC({pool_size + 1}-) on {role} vs {pool_size}-value pool",
        unsat_roles=(role, partner_role),
        added_elements=(player, valued),
    )


def _inject_p5(schema: Schema, rng: random.Random) -> InjectedFault:
    pool_size = rng.randint(1, 2)
    valued = _fresh(schema, "xsrc")
    schema.add_entity_type(valued, [f"{valued}v{k}" for k in range(pool_size)])
    roles = []
    for _ in range(pool_size + 1):
        partner = _fresh(schema, "xtgt")
        schema.add_entity_type(partner)
        _, role, _ = _fresh_fact(schema, "p5f", valued, partner)
        roles.append(role)
    schema.add_exclusion(*roles)
    return InjectedFault(
        "P5",
        f"{len(roles)} excluded roles over {pool_size}-value pool",
        unsat_roles=tuple(roles),
        added_elements=(valued,),
    )


def _inject_p6(schema: Schema, rng: random.Random) -> InjectedFault:
    left = _fresh(schema, "subl")
    right = _fresh(schema, "subr")
    schema.add_entity_type(left)
    schema.add_entity_type(right)
    _, first_a, first_b = _fresh_fact(schema, "p6f1", left, right)
    _, second_a, second_b = _fresh_fact(schema, "p6f2", left, right)
    schema.add_exclusion(first_a, second_a)
    schema.add_subset((first_a, first_b), (second_a, second_b))
    return InjectedFault(
        "P6",
        f"exclusion {first_a} X {second_a} vs predicate subset",
        unsat_roles=(first_a, first_b),
        added_elements=(left, right),
    )


def _inject_p7(schema: Schema, rng: random.Random) -> InjectedFault:
    player = _fresh(schema, "uf")
    partner = _fresh(schema, "ufp")
    schema.add_entity_type(player)
    schema.add_entity_type(partner)
    _, role, _ = _fresh_fact(schema, "p7f", player, partner)
    schema.add_uniqueness(role)
    low = rng.randint(2, 4)
    schema.add_frequency(role, low, low + 2)
    return InjectedFault(
        "P7",
        f"uniqueness + FC({low}-) on {role}",
        unsat_roles=(role,),
        added_elements=(player, partner),
    )


def _inject_p8(schema: Schema, rng: random.Random) -> InjectedFault:
    player = _fresh(schema, "ring")
    schema.add_entity_type(player)
    _, first_role, second_role = _fresh_fact(schema, "p8f", player, player)
    combo = rng.choice(
        [
            (RingKind.SYMMETRIC, RingKind.ACYCLIC),
            (RingKind.SYMMETRIC, RingKind.ASYMMETRIC),
            (RingKind.SYMMETRIC, RingKind.INTRANSITIVE, RingKind.ANTISYMMETRIC),
        ]
    )
    for kind in combo:
        schema.add_ring(kind, first_role, second_role)
    return InjectedFault(
        "P8",
        f"incompatible rings {tuple(kind.value for kind in combo)}",
        unsat_roles=(first_role, second_role),
        added_elements=(player,),
    )


def _inject_p9(schema: Schema, rng: random.Random) -> InjectedFault:
    cycle = [_fresh(schema, f"loop{k}") for k in range(3)]
    for name in cycle:
        schema.add_entity_type(name)
    for index, name in enumerate(cycle):
        schema.add_subtype(name, cycle[(index + 1) % len(cycle)])
    return InjectedFault(
        "P9",
        f"subtype loop {' < '.join(cycle)}",
        unsat_types=tuple(cycle),
        added_elements=tuple(cycle),
    )


def generate_faulty_schema(
    config: GeneratorConfig, pattern_ids: tuple[str, ...]
) -> tuple[Schema, list[InjectedFault]]:
    """A clean-ish random schema with one fault per requested pattern."""
    schema = generate_schema(config)
    rng = random.Random(config.seed ^ 0x5EED)
    faults = [inject_fault(schema, pattern_id, rng) for pattern_id in pattern_ids]
    return schema, faults


# ----------------------------------------------------------------------
# random edit scripts (incremental-engine equivalence testing)
# ----------------------------------------------------------------------


def apply_random_edit(
    schema: Schema, rng: random.Random, allow_removals: bool = True
) -> str:
    """Apply one random feasible mutation to ``schema``; returns a description.

    The op mix covers every journal kind the incremental engine reasons
    about — element/constraint additions *and* removals (subtype links in
    any direction, so cycles appear and disappear; removals cascade).  Ops
    that are infeasible in the current schema state (e.g. removing a
    constraint when none exist) are re-drawn; as a last resort a fresh
    entity type is added, which is always feasible.
    """
    ops = [
        _edit_add_entity,
        _edit_add_subtype,
        _edit_add_fact,
        _edit_add_mandatory,
        _edit_add_uniqueness,
        _edit_add_frequency,
        _edit_add_exclusion,
        _edit_add_exclusive_types,
        _edit_add_setcomp,
        _edit_add_ring,
    ]
    if allow_removals:
        ops += [
            _edit_remove_constraint,
            _edit_remove_constraint,  # weighted: retraction is the hard path
            _edit_remove_subtype,
            _edit_remove_fact,
            _edit_remove_object_type,
        ]
    for _ in range(30):
        description = rng.choice(ops)(schema, rng)
        if description is not None:
            return description
    return _edit_add_entity(schema, rng)


def random_edit_script(
    schema: Schema, rng: random.Random, length: int, allow_removals: bool = True
) -> list[str]:
    """Apply ``length`` random edits to ``schema``; returns the descriptions."""
    return [apply_random_edit(schema, rng, allow_removals) for _ in range(length)]


def _edit_add_entity(schema: Schema, rng: random.Random) -> str:
    name = _fresh(schema, "t")
    values = None
    draw = rng.random()
    if draw < 0.15:
        values = []  # empty pool: X2 / wellformedness territory
    elif draw < 0.4:
        values = [f"{name}v{k}" for k in range(rng.randint(1, 3))]
    schema.add_entity_type(name, values)
    return f"add entity {name} {values if values is not None else ''}".rstrip()


def _edit_add_subtype(schema: Schema, rng: random.Random) -> str | None:
    names = schema.object_type_names()
    if len(names) < 2:
        return None
    sub, super = rng.sample(names, k=2)  # any direction: cycles are welcome
    schema.add_subtype(sub, super)
    return f"add subtype {sub} < {super}"


def _edit_add_fact(schema: Schema, rng: random.Random) -> str | None:
    names = schema.object_type_names()
    if not names:
        return None
    name = _fresh(schema, "f")
    first_role = _fresh(schema, f"{name}_a")
    second_role = _fresh(schema, f"{name}_b")
    schema.add_fact_type(
        name, first_role, rng.choice(names), second_role, rng.choice(names)
    )
    return f"add fact {name}"


def _edit_add_mandatory(schema: Schema, rng: random.Random) -> str | None:
    roles = schema.role_names()
    if not roles:
        return None
    if rng.random() < 0.25:
        by_player: dict[str, list[str]] = {}
        for role in schema.roles():
            by_player.setdefault(role.player, []).append(role.name)
        wide = [bucket for bucket in by_player.values() if len(bucket) >= 2]
        if wide:
            branches = rng.sample(rng.choice(wide), k=2)
            schema.add_mandatory(*branches)
            return f"add disjunctive mandatory {branches}"
    role = rng.choice(roles)
    schema.add_mandatory(role)
    return f"add mandatory {role}"


def _edit_add_uniqueness(schema: Schema, rng: random.Random) -> str | None:
    facts = schema.fact_types()
    if not facts:
        return None
    fact = rng.choice(facts)
    roles = fact.role_names if rng.random() < 0.2 else (rng.choice(fact.role_names),)
    schema.add_uniqueness(*roles)
    return f"add uniqueness {roles}"


def _edit_add_frequency(schema: Schema, rng: random.Random) -> str | None:
    facts = schema.fact_types()
    if not facts:
        return None
    fact = rng.choice(facts)
    roles = fact.role_names if rng.random() < 0.2 else rng.choice(fact.role_names)
    low = rng.randint(1, 4)
    high = None if rng.random() < 0.4 else low + rng.randint(0, 2)
    schema.add_frequency(roles, low, high)
    return f"add frequency {roles} {low}..{high}"


def _edit_add_exclusion(schema: Schema, rng: random.Random) -> str | None:
    if rng.random() < 0.25:
        facts = schema.fact_types()
        if len(facts) >= 2:
            first, second = rng.sample(facts, k=2)
            schema.add_exclusion(first.role_names, second.role_names)
            return f"add predicate exclusion {first.name} X {second.name}"
    roles = schema.role_names()
    if len(roles) < 2:
        return None
    chosen = rng.sample(roles, k=min(len(roles), rng.randint(2, 3)))
    schema.add_exclusion(*chosen)
    return f"add exclusion {chosen}"


def _edit_add_exclusive_types(schema: Schema, rng: random.Random) -> str | None:
    names = schema.object_type_names()
    if len(names) < 2:
        return None
    chosen = rng.sample(names, k=2)
    schema.add_exclusive_types(*chosen)
    return f"add exclusive {chosen}"


def _edit_add_setcomp(schema: Schema, rng: random.Random) -> str | None:
    facts = schema.fact_types()
    if len(facts) < 2:
        return None
    first, second = rng.sample(facts, k=2)
    if rng.random() < 0.5:
        schema.add_subset(first.role_names, second.role_names)
        return f"add subset {first.name} < {second.name}"
    schema.add_equality(first.role_names, second.role_names)
    return f"add equality {first.name} = {second.name}"


def _edit_add_ring(schema: Schema, rng: random.Random) -> str | None:
    facts = schema.fact_types()
    if not facts:
        return None
    fact = rng.choice(facts)
    for kind in rng.sample(list(RingKind), k=rng.randint(1, 2)):
        schema.add_ring(kind, *fact.role_names)
    return f"add ring(s) on {fact.name}"


def _edit_remove_constraint(schema: Schema, rng: random.Random) -> str | None:
    constraints = schema.constraints()
    if not constraints:
        return None
    constraint = rng.choice(constraints)
    schema.remove_constraint(constraint)
    return f"remove constraint {constraint.label}"


def _edit_remove_subtype(schema: Schema, rng: random.Random) -> str | None:
    links = schema.subtype_links()
    if not links:
        return None
    link = rng.choice(links)
    schema.remove_subtype(link.sub, link.super)
    return f"remove subtype {link.sub} < {link.super}"


def _edit_remove_fact(schema: Schema, rng: random.Random) -> str | None:
    facts = schema.fact_types()
    if not facts:
        return None
    fact = rng.choice(facts)
    schema.remove_fact_type(fact.name)
    return f"remove fact {fact.name}"


def _edit_remove_object_type(schema: Schema, rng: random.Random) -> str | None:
    names = schema.object_type_names()
    if not names:
        return None
    name = rng.choice(names)
    schema.remove_object_type(name)
    return f"remove entity {name}"


def clean_schema(config: GeneratorConfig) -> Schema:
    """A random schema with conflict-prone constraint kinds disabled.

    Used by scaling benchmarks that need large *satisfiable* inputs: no
    exclusions, no frequencies above the pool sizes, no ring stacking.
    """
    quiet = GeneratorConfig(
        num_types=config.num_types,
        num_facts=config.num_facts,
        subtype_probability=config.subtype_probability,
        value_probability=0.0,
        mandatory_probability=config.mandatory_probability,
        uniqueness_probability=config.uniqueness_probability,
        frequency_probability=0.0,
        exclusion_probability=0.0,
        setcomp_probability=0.0,
        ring_probability=0.0,
        seed=config.seed,
    )
    return generate_schema(quiet)
