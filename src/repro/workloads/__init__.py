"""Workloads: paper figures and random schema generation."""

from repro.workloads.figures import (
    EXPECTATIONS,
    FIGURES,
    FigureExpectation,
    build_figure,
)
from repro.workloads.generator import (
    GeneratorConfig,
    InjectedFault,
    clean_schema,
    generate_faulty_schema,
    generate_schema,
    inject_fault,
)

__all__ = [
    "EXPECTATIONS",
    "FIGURES",
    "FigureExpectation",
    "GeneratorConfig",
    "InjectedFault",
    "build_figure",
    "clean_schema",
    "generate_faulty_schema",
    "generate_schema",
    "inject_fault",
]
