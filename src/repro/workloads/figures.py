"""Every worked example of the paper as a constructible schema.

Each ``figN_*`` function rebuilds the ORM schema of the corresponding paper
figure; :data:`EXPECTATIONS` records which patterns the paper says must (or
must not) fire and which elements become unsatisfiable.  The test suite and
``benchmarks/bench_figures.py`` iterate this registry, so the figures are
checked on every run.

Object/role names follow the figures (``A``, ``B``, ``r1`` ...); partner
types absent from a figure are named ``X1``, ``X2`` ... as neutral fillers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.orm import Schema, SchemaBuilder


@dataclass(frozen=True)
class FigureExpectation:
    """What the paper asserts about one figure's schema."""

    figure: str
    patterns: tuple[str, ...]  # pattern ids that must fire (exactly these)
    unsat_roles: tuple[str, ...] = ()
    unsat_types: tuple[str, ...] = ()
    weakly_satisfiable: bool = True  # the global schema still has a model
    note: str = ""
    extra_unsat_ok: tuple[str, ...] = field(default=())


def fig1_phd_student() -> Schema:
    """Fig. 1: PhDStudent under exclusive Student/Employee — type unsat,
    schema still weakly satisfiable."""
    return (
        SchemaBuilder("fig1_phd_student")
        .entities("Person", "Student", "Employee", "PhDStudent")
        .subtype("Student", "Person")
        .subtype("Employee", "Person")
        .subtype("PhDStudent", "Student")
        .subtype("PhDStudent", "Employee")
        .exclusive_types("Student", "Employee", label="x_student_employee")
        .annotate("figure", "1")
        .build()
    )


def fig2_no_common_supertype() -> Schema:
    """Fig. 2: C under unrelated tops A and B (Pattern 1)."""
    return (
        SchemaBuilder("fig2_no_common_supertype")
        .entities("A", "B", "C")
        .subtype("C", "A")
        .subtype("C", "B")
        .annotate("figure", "2")
        .build()
    )


def fig3_exclusive_supertypes() -> Schema:
    """Fig. 3: D under exclusive siblings B and C (Pattern 2)."""
    return (
        SchemaBuilder("fig3_exclusive_supertypes")
        .entities("A", "B", "C", "D")
        .subtype("B", "A")
        .subtype("C", "A")
        .subtype("D", "B")
        .subtype("D", "C")
        .exclusive_types("B", "C", label="x_b_c")
        .annotate("figure", "3")
        .build()
    )


def fig4a_exclusion_mandatory() -> Schema:
    """Fig. 4(a): r1 mandatory, r1 X r3, same player — r3 unplayable."""
    return (
        SchemaBuilder("fig4a_exclusion_mandatory")
        .entities("A", "X1", "X2")
        .fact("f1", ("r1", "A"), ("r2", "X1"))
        .fact("f2", ("r3", "A"), ("r4", "X2"))
        .mandatory("r1", label="m_r1")
        .exclusion("r1", "r3", label="x_r1_r3")
        .annotate("figure", "4a")
        .build()
    )


def fig4b_double_mandatory() -> Schema:
    """Fig. 4(b): r1 and r3 both mandatory yet exclusive — A unpopulatable."""
    return (
        SchemaBuilder("fig4b_double_mandatory")
        .entities("A", "X1", "X2")
        .fact("f1", ("r1", "A"), ("r2", "X1"))
        .fact("f2", ("r3", "A"), ("r4", "X2"))
        .mandatory("r1", label="m_r1")
        .mandatory("r3", label="m_r3")
        .exclusion("r1", "r3", label="x_r1_r3")
        .annotate("figure", "4b")
        .build()
    )


def fig4c_subtype_exclusion() -> Schema:
    """Fig. 4(c): exclusion spans a subtype's role — r3 and r5 unplayable."""
    return (
        SchemaBuilder("fig4c_subtype_exclusion")
        .entities("A", "B", "X1", "X2", "X3")
        .subtype("B", "A")
        .fact("f1", ("r1", "A"), ("r2", "X1"))
        .fact("f2", ("r3", "A"), ("r4", "X2"))
        .fact("f3", ("r5", "B"), ("r6", "X3"))
        .mandatory("r1", label="m_r1")
        .exclusion("r1", "r3", "r5", label="x_r1_r3_r5")
        .annotate("figure", "4c")
        .build()
    )


def fig5_frequency_value() -> Schema:
    """Fig. 5: FC(3-5) on r1 against a 2-value partner (Pattern 4)."""
    return (
        SchemaBuilder("fig5_frequency_value")
        .entity("A")
        .entity("B", values=["x1", "x2"])
        .fact("f1", ("r1", "A"), ("r2", "B"))
        .frequency("r1", 3, 5, label="fc_r1")
        .annotate("figure", "5")
        .build()
    )


def fig6_value_exclusion_frequency() -> Schema:
    """Fig. 6: value {a1,a2} + exclusion(r1, r3) + FC(2-) on r1's inverse.

    Populating r1 needs 2 distinct A-values (the inverse-role frequency),
    r3 needs a third — but only two values exist (Pattern 5).
    """
    return (
        SchemaBuilder("fig6_value_exclusion_frequency")
        .entity("A", values=["a1", "a2"])
        .entities("B", "C")
        .fact("f1", ("r1", "A"), ("r2", "B"))
        .fact("f2", ("r3", "A"), ("r4", "C"))
        .exclusion("r1", "r3", label="x_r1_r3")
        .frequency("r2", 2, None, label="fc_r2")
        .annotate("figure", "6")
        .build()
    )


def fig6_without_value() -> Schema:
    """Fig. 6 ablation: drop the value constraint — satisfiable."""
    schema = (
        SchemaBuilder("fig6_without_value")
        .entity("A")
        .entities("B", "C")
        .fact("f1", ("r1", "A"), ("r2", "B"))
        .fact("f2", ("r3", "A"), ("r4", "C"))
        .exclusion("r1", "r3", label="x_r1_r3")
        .frequency("r2", 2, None, label="fc_r2")
        .annotate("figure", "6-ablation-value")
        .build()
    )
    return schema


def fig6_without_exclusion() -> Schema:
    """Fig. 6 ablation: drop the exclusion — satisfiable."""
    return (
        SchemaBuilder("fig6_without_exclusion")
        .entity("A", values=["a1", "a2"])
        .entities("B", "C")
        .fact("f1", ("r1", "A"), ("r2", "B"))
        .fact("f2", ("r3", "A"), ("r4", "C"))
        .frequency("r2", 2, None, label="fc_r2")
        .annotate("figure", "6-ablation-exclusion")
        .build()
    )


def fig6_without_frequency() -> Schema:
    """Fig. 6 ablation: drop the frequency — satisfiable (2 roles, 2 values)."""
    return (
        SchemaBuilder("fig6_without_frequency")
        .entity("A", values=["a1", "a2"])
        .entities("B", "C")
        .fact("f1", ("r1", "A"), ("r2", "B"))
        .fact("f2", ("r3", "A"), ("r4", "C"))
        .exclusion("r1", "r3", label="x_r1_r3")
        .annotate("figure", "6-ablation-frequency")
        .build()
    )


def fig7_value_exclusion() -> Schema:
    """Fig. 7: three excluded roles over a 2-value type (Pattern 5, fi = 1)."""
    return (
        SchemaBuilder("fig7_value_exclusion")
        .entity("A", values=["a1", "a2"])
        .entities("B", "C", "D")
        .fact("f1", ("r1", "A"), ("r2", "B"))
        .fact("f2", ("r3", "A"), ("r4", "C"))
        .fact("f3", ("r5", "A"), ("r6", "D"))
        .exclusion("r1", "r3", "r5", label="x_r1_r3_r5")
        .annotate("figure", "7")
        .build()
    )


def fig8_exclusion_subset() -> Schema:
    """Fig. 8: exclusion(r1, r3) against subset (r1,r2) ⊆ (r3,r4) (Pattern 6)."""
    return (
        SchemaBuilder("fig8_exclusion_subset")
        .entities("A", "B")
        .fact("f1", ("r1", "A"), ("r2", "B"))
        .fact("f2", ("r3", "A"), ("r4", "B"))
        .exclusion("r1", "r3", label="x_r1_r3")
        .subset(("r1", "r2"), ("r3", "r4"), label="sub_f1_f2")
        .annotate("figure", "8")
        .build()
    )


def fig10_uniqueness_frequency() -> Schema:
    """Fig. 10: uniqueness and FC(2-5) on the same role (Pattern 7)."""
    return (
        SchemaBuilder("fig10_uniqueness_frequency")
        .entities("A", "B")
        .fact("f1", ("r1", "A"), ("r2", "B"))
        .unique("r1", label="u_r1")
        .frequency("r1", 2, 5, label="fc_r1")
        .annotate("figure", "10")
        .build()
    )


def fig11_sister_of() -> Schema:
    """Fig. 11: irreflexive 'Sister of' — a satisfiable ring constraint."""
    return (
        SchemaBuilder("fig11_sister_of")
        .entity("Woman")
        .fact("sister_of", ("w1", "Woman"), ("w2", "Woman"))
        .ring("ir", "w1", "w2", label="ring_ir")
        .annotate("figure", "11")
        .build()
    )


def fig12_incompatible_rings() -> Schema:
    """Fig. 12-derived example: symmetric + acyclic on one pair (Pattern 8)."""
    return (
        SchemaBuilder("fig12_incompatible_rings")
        .entity("A")
        .fact("rel", ("r1", "A"), ("r2", "A"))
        .ring("sym", "r1", "r2", label="ring_sym")
        .ring("ac", "r1", "r2", label="ring_ac")
        .annotate("figure", "12")
        .build()
    )


def fig13_subtype_loop() -> Schema:
    """Fig. 13: A < B < C < A (Pattern 9)."""
    return (
        SchemaBuilder("fig13_subtype_loop")
        .entities("A", "B", "C")
        .subtype("A", "B")
        .subtype("B", "C")
        .subtype("C", "A")
        .annotate("figure", "13")
        .build()
    )


def fig14_rule6_satisfiable() -> Schema:
    """Fig. 14: violates formation rule 6, yet every role is satisfiable.

    B < A; A carries a *disjunctive* mandatory over r1/r3; exclusion between
    r3 and the subtype's role r5.  Populating r5 with 'a' forces 'a' to play
    r1 or r3; the exclusion blocks r3 but r1 remains open.
    """
    return (
        SchemaBuilder("fig14_rule6_satisfiable")
        .entities("A", "B", "X1", "X2", "X3")
        .subtype("B", "A")
        .fact("f1", ("r1", "A"), ("r2", "X1"))
        .fact("f2", ("r3", "A"), ("r4", "X2"))
        .fact("f3", ("r5", "B"), ("r6", "X3"))
        .mandatory("r1", "r3", label="dm_r1_r3")
        .exclusion("r3", "r5", label="x_r3_r5")
        .annotate("figure", "14")
        .build()
    )


#: The paper's assertions per figure, keyed by constructor name.
EXPECTATIONS: dict[str, FigureExpectation] = {
    "fig1_phd_student": FigureExpectation(
        figure="1",
        patterns=("P2",),
        unsat_types=("PhDStudent",),
        weakly_satisfiable=True,
        note="type unsatisfiable, schema weakly satisfiable (paper Sec. 1)",
    ),
    "fig2_no_common_supertype": FigureExpectation(
        figure="2", patterns=("P1",), unsat_types=("C",)
    ),
    "fig3_exclusive_supertypes": FigureExpectation(
        figure="3", patterns=("P2",), unsat_types=("D",)
    ),
    "fig4a_exclusion_mandatory": FigureExpectation(
        figure="4a", patterns=("P3",), unsat_roles=("r3",)
    ),
    "fig4b_double_mandatory": FigureExpectation(
        figure="4b",
        patterns=("P3",),
        unsat_roles=("r1", "r3"),
        unsat_types=("A",),
        weakly_satisfiable=True,
        note="A empty is a model of the whole schema",
    ),
    "fig4c_subtype_exclusion": FigureExpectation(
        figure="4c", patterns=("P3",), unsat_roles=("r3", "r5")
    ),
    "fig5_frequency_value": FigureExpectation(
        figure="5", patterns=("P4",), unsat_roles=("r1",), extra_unsat_ok=("r2",)
    ),
    "fig6_value_exclusion_frequency": FigureExpectation(
        # P5 flags r1/r3 *jointly* (no single role is individually empty,
        # hence unsat_roles=()); the report still lists them.
        figure="6", patterns=("P5",), unsat_roles=(), extra_unsat_ok=("r1", "r3")
    ),
    "fig6_without_value": FigureExpectation(figure="6", patterns=()),
    "fig6_without_exclusion": FigureExpectation(figure="6", patterns=()),
    "fig6_without_frequency": FigureExpectation(figure="6", patterns=()),
    "fig7_value_exclusion": FigureExpectation(
        # as with Fig. 6: P5's verdict is joint, not per-role
        figure="7", patterns=("P5",), extra_unsat_ok=("r1", "r3", "r5")
    ),
    "fig8_exclusion_subset": FigureExpectation(
        figure="8", patterns=("P6",), unsat_roles=("r1", "r2")
    ),
    "fig10_uniqueness_frequency": FigureExpectation(
        figure="10", patterns=("P7",), unsat_roles=("r1",)
    ),
    "fig11_sister_of": FigureExpectation(figure="11", patterns=()),
    "fig12_incompatible_rings": FigureExpectation(
        figure="12", patterns=("P8",), unsat_roles=("r1", "r2")
    ),
    "fig13_subtype_loop": FigureExpectation(
        figure="13", patterns=("P9",), unsat_types=("A", "B", "C")
    ),
    "fig14_rule6_satisfiable": FigureExpectation(
        figure="14", patterns=(), note="violates FR6 but all roles satisfiable"
    ),
}

#: All figure constructors in paper order.
FIGURES = {
    name: constructor
    for name, constructor in (
        ("fig1_phd_student", fig1_phd_student),
        ("fig2_no_common_supertype", fig2_no_common_supertype),
        ("fig3_exclusive_supertypes", fig3_exclusive_supertypes),
        ("fig4a_exclusion_mandatory", fig4a_exclusion_mandatory),
        ("fig4b_double_mandatory", fig4b_double_mandatory),
        ("fig4c_subtype_exclusion", fig4c_subtype_exclusion),
        ("fig5_frequency_value", fig5_frequency_value),
        ("fig6_value_exclusion_frequency", fig6_value_exclusion_frequency),
        ("fig6_without_value", fig6_without_value),
        ("fig6_without_exclusion", fig6_without_exclusion),
        ("fig6_without_frequency", fig6_without_frequency),
        ("fig7_value_exclusion", fig7_value_exclusion),
        ("fig8_exclusion_subset", fig8_exclusion_subset),
        ("fig10_uniqueness_frequency", fig10_uniqueness_frequency),
        ("fig11_sister_of", fig11_sister_of),
        ("fig12_incompatible_rings", fig12_incompatible_rings),
        ("fig13_subtype_loop", fig13_subtype_loop),
        ("fig14_rule6_satisfiable", fig14_rule6_satisfiable),
    )
}


def build_figure(name: str) -> Schema:
    """Construct the named figure schema."""
    try:
        return FIGURES[name]()
    except KeyError:
        raise KeyError(f"unknown figure: {name!r}") from None
